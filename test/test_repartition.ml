(* Tests for the repartitioning (reflow) post-pass extension. *)

open Fbp_netlist

let run_placer n seed =
  let d = Generator.quick ~seed ~name:"reflow" n in
  let inst = Fbp_movebound.Instance.unconstrained d in
  match Fbp_core.Placer.place inst with
  | Error e -> Alcotest.fail (Fbp_resilience.Fbp_error.to_string e)
  | Ok rep -> (d, inst, rep)

let test_sweep_improves_or_preserves_hpwl () =
  let _, inst, rep = run_placer 2000 81 in
  let stats = Fbp_core.Repartition.refine ~sweeps:1 Fbp_core.Config.default inst rep in
  match stats with
  | [ s ] ->
    Alcotest.(check bool) "blocks visited" true (s.Fbp_core.Repartition.n_blocks > 0);
    Alcotest.(check bool)
      (Printf.sprintf "hpwl %.0f -> %.0f not much worse" s.Fbp_core.Repartition.hpwl_before
         s.Fbp_core.Repartition.hpwl_after)
      true
      (s.Fbp_core.Repartition.hpwl_after <= s.Fbp_core.Repartition.hpwl_before *. 1.02)
  | _ -> Alcotest.fail "expected one sweep"

let test_sweep_respects_capacities_and_admissibility () =
  let d = Generator.quick ~seed:82 ~name:"reflow2" 2000 in
  let chip = d.Design.chip in
  let w = Fbp_geometry.Rect.width chip and h = Fbp_geometry.Rect.height chip in
  let island =
    Fbp_geometry.Rect.make ~x0:(0.1 *. w) ~y0:(0.1 *. h) ~x1:(0.5 *. w) ~y1:(0.5 *. h)
  in
  let nl = d.Design.netlist in
  let rng = Fbp_util.Rng.create 83 in
  for c = 0 to Netlist.n_cells nl - 1 do
    if Fbp_util.Rng.float rng < 0.1 then nl.Netlist.movebound.(c) <- 0
  done;
  let inst =
    { Fbp_movebound.Instance.design = d;
      movebounds =
        [| Fbp_movebound.Movebound.make ~id:0 ~name:"isl"
             ~kind:Fbp_movebound.Movebound.Inclusive [ island ] |] }
  in
  match Fbp_core.Placer.place inst with
  | Error e -> Alcotest.fail (Fbp_resilience.Fbp_error.to_string e)
  | Ok rep ->
    let inst_n =
      match Fbp_movebound.Instance.normalize inst with Ok i -> i | Error e -> Alcotest.fail e
    in
    ignore (Fbp_core.Repartition.refine ~sweeps:2 Fbp_core.Config.default inst_n rep);
    let grid = Option.get rep.Fbp_core.Placer.final_grid in
    (* every constrained cell still assigned to an admissible piece *)
    for c = 0 to Netlist.n_cells nl - 1 do
      if nl.Netlist.movebound.(c) = 0 && not nl.Netlist.fixed.(c) then begin
        let pid = rep.Fbp_core.Placer.piece_of_cell.(c) in
        Alcotest.(check bool) "assigned" true (pid >= 0);
        let region =
          rep.Fbp_core.Placer.regions.Fbp_movebound.Regions.regions.(grid.Fbp_core.Grid.pieces.(pid).Fbp_core.Grid.region)
        in
        if not (Fbp_movebound.Regions.admissible region ~mb:0) then
          Alcotest.failf "cell %d repartitioned to inadmissible piece" c
      end
    done;
    (* piece loads stay within capacity + one-cell slack *)
    let load = Array.make (Fbp_core.Grid.n_pieces grid) 0.0 in
    for c = 0 to Netlist.n_cells nl - 1 do
      let pid = rep.Fbp_core.Placer.piece_of_cell.(c) in
      if pid >= 0 then load.(pid) <- load.(pid) +. Netlist.size nl c
    done;
    let max_cell = Array.fold_left Float.max 0.0 nl.Netlist.widths in
    Array.iter
      (fun (p : Fbp_core.Grid.piece) ->
        if load.(p.Fbp_core.Grid.id) > p.Fbp_core.Grid.capacity +. (2.0 *. max_cell) then
          Alcotest.failf "piece %d overfull after reflow" p.Fbp_core.Grid.id)
      grid.Fbp_core.Grid.pieces

let test_refine_without_grid_is_noop () =
  let _, inst, rep = run_placer 1500 84 in
  let rep' = { rep with Fbp_core.Placer.final_grid = None } in
  Alcotest.(check int) "no sweeps" 0
    (List.length (Fbp_core.Repartition.refine Fbp_core.Config.default inst rep'))

let test_runner_reflow_ablation () =
  (* reflow on vs off: on must not be worse (it is designed to help) *)
  let d = Generator.quick ~seed:85 ~name:"reflow3" 2500 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  match
    (Fbp_workloads.Runner.run_fbp ~repartition:0 inst,
     Fbp_workloads.Runner.run_fbp ~repartition:1 inst)
  with
  | Ok off, Ok on ->
    Alcotest.(check bool)
      (Printf.sprintf "reflow %.0f <= no-reflow %.0f * 1.02" on.Fbp_workloads.Runner.hpwl
         off.Fbp_workloads.Runner.hpwl)
      true
      (on.Fbp_workloads.Runner.hpwl <= off.Fbp_workloads.Runner.hpwl *. 1.02);
    Alcotest.(check bool) "both legal" true
      (on.Fbp_workloads.Runner.legal && off.Fbp_workloads.Runner.legal)
  | Error e, _ | _, Error e -> Alcotest.fail (Fbp_resilience.Fbp_error.to_string e)

let suite =
  [
    Alcotest.test_case "sweep preserves/improves hpwl" `Quick test_sweep_improves_or_preserves_hpwl;
    Alcotest.test_case "sweep respects movebounds + capacities" `Slow
      test_sweep_respects_capacities_and_admissibility;
    Alcotest.test_case "refine without grid no-op" `Quick test_refine_without_grid_is_noop;
    Alcotest.test_case "runner reflow ablation" `Slow test_runner_reflow_ablation;
  ]
