(* Tests for the fbp-lint static analysis: one fixture per rule, path
   scoping, and the inline-suppression machinery.  Fixtures are linted
   as-if at a lib/ path (the strictest scope) unless a test says
   otherwise. *)

module Lint = Fbp_analysis.Lint
module D = Fbp_analysis.Diagnostic

let lint ?(path = "lib/fake/fixture.ml") src = Lint.lint_string ~path src

let has_rule r ds = List.exists (fun (d : D.t) -> String.equal d.D.rule r) ds

let first_line rule ds =
  match List.find_opt (fun (d : D.t) -> String.equal d.D.rule rule) ds with
  | Some d -> d.D.line
  | None -> -1

let check_finds ctx rule ?line ?path src =
  let ds = lint ?path src in
  Alcotest.(check bool) (ctx ^ ": finds " ^ rule) true (has_rule rule ds);
  match line with
  | None -> ()
  | Some l -> Alcotest.(check int) (ctx ^ ": line") l (first_line rule ds)

let check_clean ctx ?path src =
  let ds = lint ?path src in
  Alcotest.(check int)
    (ctx ^ ": clean but got ["
    ^ String.concat "; " (List.map D.to_text ds)
    ^ "]")
    0 (List.length ds)

(* ---------- domain-safety ---------- *)

let test_domain_safety () =
  (* flags both the module-level mutable itself and its capture sites *)
  let ds =
    lint
      {|let total = ref 0
let f xs = Fbp_util.Parallel.map_array (fun x -> total := !total + x; x) xs
|}
  in
  Alcotest.(check bool) "module-level ref flagged" true
    (List.exists
       (fun (d : D.t) -> String.equal d.D.rule "domain-safety" && d.D.line = 1)
       ds);
  Alcotest.(check bool) "closure capture flagged" true
    (List.exists
       (fun (d : D.t) -> String.equal d.D.rule "domain-safety" && d.D.line = 2)
       ds);
  check_finds "module-level Hashtbl in parallel closure" "domain-safety"
    {|let cache = Hashtbl.create 16
let f xs =
  Fbp_util.Parallel.iter_array (fun x -> Hashtbl.replace cache x x) xs
|};
  check_clean "pure closure"
    {|let f xs = Fbp_util.Parallel.map_array (fun x -> x + 1) xs
|};
  check_clean "closure mutating its own local state"
    {|let f xs =
  Fbp_util.Parallel.map_array
    (fun x ->
      let acc = ref 0 in
      acc := x;
      !acc)
    xs
|};
  (* the Pool entry points are covered too, across every closure argument *)
  check_finds "capture in Pool.run_chunks closure" "domain-safety"
    {|let hits = ref 0
let f () = Fbp_util.Pool.run_chunks ~n_chunks:4 (fun _c -> incr hits)
|};
  check_finds "capture in second fork2 closure" "domain-safety"
    {|let hits = ref 0
let f () =
  Fbp_util.Pool.fork2 (fun () -> 1) (fun () -> incr hits; 2)
|};
  check_finds "capture in Pool.lease_run closure" "domain-safety"
    {|let hits = ref 0
let f l = Fbp_util.Pool.lease_run l ~n_chunks:4 (fun _c -> incr hits)
|};
  check_finds "capture in Pool.reduce closure" "domain-safety"
    {|let seen = Hashtbl.create 8
let f n =
  Fbp_util.Pool.reduce ~grain:64 ~n
    (fun lo _hi -> Hashtbl.replace seen lo (); float_of_int lo)
    (fun a b -> a +. b)
|};
  check_clean "pure fork2"
    {|let f () = Fbp_util.Pool.fork2 (fun () -> 1) (fun () -> 2)
|};
  (* profiler hooks run on worker domains: their closures get the same
     capture analysis as work closures *)
  check_finds "capture in Pool.set_profile_hook callback" "domain-safety"
    {|let n = ref 0
let arm () = Fbp_util.Pool.set_profile_hook (fun _ev -> incr n)
|};
  check_clean "hook forwarding to a named handler"
    {|let arm st = Fbp_util.Pool.set_profile_hook (fun ev -> handle st ev)
|}

(* ---------- float-discipline ---------- *)

let test_float_discipline () =
  check_finds "polymorphic compare" "float-discipline" ~line:1
    {|let f a b = compare a b
|};
  check_finds "float equality" "float-discipline"
    {|let close x = x = 1.0
|};
  check_finds "List.mem" "float-discipline"
    {|let f xs = List.mem 3 xs
|};
  check_clean "monomorphic compare"
    {|let f a b = Float.compare a b
let g a b = Int.compare a b
|};
  check_clean "int equality is fine"
    {|let f x = x = 3
|}

(* ---------- determinism ---------- *)

let test_determinism () =
  check_finds "Random outside rng.ml" "determinism" ~line:1
    {|let r () = Random.int 10
|};
  check_finds "Unix.gettimeofday outside timer.ml" "determinism"
    {|let t () = Unix.gettimeofday ()
|};
  (* the fuzzer path is NOT exempt: all fuzz randomness must route through
     Fbp_util.Rng, or campaigns stop replaying from their seed *)
  check_finds "Random.self_init in fuzz code" "determinism" ~line:1
    ~path:"lib/workloads/fuzz.ml"
    {|let seed () = Random.self_init (); Random.bits ()
|};
  check_finds "Random draw in fuzz code" "determinism"
    ~path:"lib/workloads/fuzz.ml"
    {|let pick n = Random.int n
|};
  check_clean "Random inside the rng module" ~path:"lib/util/rng.ml"
    {|let r () = Random.int 10
|};
  check_clean "wall clock inside the timer module" ~path:"lib/util/timer.ml"
    {|let t () = Unix.gettimeofday ()
|}

(* ---------- error-taxonomy ---------- *)

let test_error_taxonomy () =
  check_finds "bare failwith in lib" "error-taxonomy" ~line:1
    {|let f () = failwith "boom"
|};
  check_clean "failwith in bin is allowed" ~path:"bin/tool.ml"
    {|let f () = failwith "boom"
|};
  check_clean "failwith in the resilience layer"
    ~path:"lib/resilience/fbp_error.ml"
    {|let f () = failwith "boom"
|};
  check_finds "anonymous invalid_arg" "error-taxonomy"
    {|let f x = if x < 0 then invalid_arg "bad" else x
|};
  check_clean "invalid_arg naming the function"
    {|let f x = if x < 0 then invalid_arg "Fixture.f: x must be non-negative" else x
|}

(* ---------- io-discipline ---------- *)

let test_io_discipline () =
  check_finds "print_endline in lib" "io-discipline" ~line:1
    {|let f () = print_endline "hello"
|};
  check_finds "Printf.printf in lib" "io-discipline"
    {|let f n = Printf.printf "%d\n" n
|};
  check_clean "printing from bin is fine" ~path:"bin/tool.ml"
    {|let f () = print_endline "hello"
|};
  check_clean "Printf.sprintf is pure"
    {|let f n = Printf.sprintf "%d" n
|}

(* ---------- obs-discipline ---------- *)

let test_obs_discipline () =
  check_finds "raw span_begin in lib" "obs-discipline" ~line:1
    {|let f () = Fbp_obs.Obs.span_begin "phase"
|};
  check_finds "raw span_end in lib" "obs-discipline"
    {|let f () = Fbp_obs.Obs.span_end "phase"
|};
  check_finds "unqualified Obs.span_begin" "obs-discipline"
    {|let f () = Obs.span_begin "phase"
|};
  check_clean "scoped Obs.span is the discipline"
    {|let f g = Fbp_obs.Obs.span "phase" g
|};
  check_clean "record_interval is fine"
    {|let f () = Fbp_obs.Obs.record_interval ~name:"gc" ~tid:0 ~ts_us:0.0 ~dur_us:1.0 []
|};
  check_clean "lib/obs itself may use the raw markers"
    ~path:"lib/obs/profiler.ml"
    {|let f () = Obs.span_begin "phase"
|};
  check_clean "suppressible with a reason"
    ({|(* fbp-|}
    ^ {|lint: allow obs-discipline |} ^ "\xe2\x80\x94" ^ {| fixture *)
let f () = Fbp_obs.Obs.span_begin "phase"
|})

(* ---------- suppression ---------- *)

let test_suppression_honored () =
  check_clean "directive on the line above"
    ({|(* fbp-|}
    ^ {|lint: allow determinism |} ^ "\xe2\x80\x94" ^ {| fixture *)
let r () = Random.int 10
|});
  check_clean "directive on the same line"
    ({|let r () = Random.int 10 (* fbp-|}
    ^ {|lint: allow determinism |} ^ "\xe2\x80\x94" ^ {| fixture *)
|})

let test_suppression_wrong_rule () =
  (* a directive for another rule does not hide the finding, and is itself
     reported as unused *)
  let ds =
    lint
      ({|(* fbp-|}
      ^ {|lint: allow io-discipline |} ^ "\xe2\x80\x94" ^ {| fixture *)
let r () = Random.int 10
|})
  in
  Alcotest.(check bool) "finding survives" true (has_rule "determinism" ds);
  Alcotest.(check bool) "unused directive reported" true
    (has_rule "lint-directive" ds)

let test_suppression_malformed () =
  let ds = lint ({|(* fbp-|} ^ {|lint: allow *)
let x = 1
|}) in
  Alcotest.(check bool) "malformed directive reported" true
    (has_rule "lint-directive" ds)

let test_suppression_unused () =
  let ds =
    lint
      ({|(* fbp-|}
      ^ {|lint: allow determinism |} ^ "\xe2\x80\x94" ^ {| fixture *)
let x = 1
|})
  in
  Alcotest.(check int) "exactly one diagnostic" 1 (List.length ds);
  Alcotest.(check bool) "it is the unused directive" true
    (has_rule "lint-directive" ds)

(* ---------- reporting ---------- *)

let test_report_shapes () =
  let src = {|let r () = Random.int 10
|} in
  let ds = lint src in
  Alcotest.(check int) "one finding" 1 (List.length ds);
  let d = List.hd ds in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "text mentions rule" true
    (contains (D.to_text d) "[determinism]");
  Alcotest.(check bool) "key shape" true
    (String.equal (D.key d) "lib/fake/fixture.ml:1:determinism")

let test_parse_error_is_reported () =
  match Lint.lint_file "/nonexistent/fbp-fixture.ml" with
  | Ok _ -> Alcotest.fail "missing file must not lint clean"
  | Error _ -> ()

(* ---------- ratchet ---------- *)

let test_ratchet () =
  let ds = lint {|let r () = Random.int 10
|} in
  let key = D.key (List.hd ds) in
  let r =
    Lint.ratchet
      ~old_keys:[ key; "stale.ml:3:io-discipline" ]
      ~current:ds
  in
  Alcotest.(check (list string)) "kept" [ key ] r.Lint.kept;
  Alcotest.(check (list string))
    "retired" [ "stale.ml:3:io-discipline" ] r.Lint.retired;
  Alcotest.(check (list string)) "rejected" [] r.Lint.rejected;
  let r = Lint.ratchet ~old_keys:[] ~current:ds in
  Alcotest.(check (list string)) "new finding rejected" [ key ] r.Lint.rejected;
  let r = Lint.ratchet ~old_keys:[ "gone.ml:1:determinism" ] ~current:[] in
  Alcotest.(check (list string))
    "clean run retires everything" [ "gone.ml:1:determinism" ] r.Lint.retired

(* ---------- deferred staleness for semantic rules ---------- *)

let test_suppression_defer () =
  let module S = Fbp_analysis.Suppress in
  let src =
    {|(* fbp-|} ^ {|lint: allow domain-safety |} ^ "\xe2\x80\x94"
    ^ {| maybe the interproc pass matches it *)
let x = 1
|}
  in
  let file = "lib/fake/fixture.ml" in
  let sups, malformed = S.scan ~file src in
  Alcotest.(check int) "directive parses" 0 (List.length malformed);
  (* syntactic-only run: unused semantic-rule suppressions are deferred *)
  let deferred =
    S.apply
      ~defer:(fun rules -> List.exists (String.equal "domain-safety") rules)
      ~file sups []
  in
  Alcotest.(check int) "deferred, not reported" 0 (List.length deferred);
  (* combined run: no deferral — the suppression is genuinely stale *)
  let sups, _ = S.scan ~file src in
  let reported = S.apply ~file sups [] in
  Alcotest.(check bool) "stale in a combined run" true
    (has_rule "lint-directive" reported)

(* ---------- interprocedural (typed fixtures) ---------- *)

module Ip = Fbp_analysis.Interproc
module Cl = Fbp_analysis.Cmt_loader

(* dune runs the test binary from _build/default/test, where the fixture
   library's build artifacts sit under fixtures/; when invoked from
   elsewhere the typed tests skip (the @lint alias still covers the
   real tree). *)
let fixture_root =
  List.find_opt Sys.file_exists [ "fixtures"; "test/fixtures" ]

let fixture_result =
  lazy
    (match fixture_root with
    | None -> None
    | Some root ->
      let units, errors = Cl.scan ~roots:[ root ] in
      let cfg =
        {
          (Ip.default_config ~cmt_roots:[ root ]) with
          Ip.det_entries = [ "Fbp_lint_fixtures.Fix_taint.drive" ];
          cli_entries =
            [
              "Fbp_lint_fixtures.Fix_raise.main";
              "Fbp_lint_fixtures.Fix_raise.safe_main";
              "Fbp_lint_fixtures.Fix_raise.typed_main";
            ];
        }
      in
      Some (cfg, units, Ip.analyze_units cfg units errors))

let signature_of r fn =
  match
    List.find_opt (fun (f, _) -> String.equal f fn) r.Ip.signatures
  with
  | Some (_, s) -> s
  | None -> "<missing>"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1))
  in
  go 0

let with_fixtures f =
  match Lazy.force fixture_result with
  | None -> () (* no typed artifacts here; covered by @lint *)
  | Some (cfg, units, r) -> f cfg units r

let test_ip_signatures () =
  with_fixtures (fun _ _ r ->
      let check_sig fn expected =
        Alcotest.(check string) fn expected
          (signature_of r ("Fbp_lint_fixtures." ^ fn))
      in
      check_sig "Fix_pure.add" "pure";
      check_sig "Fix_pure.fact" "pure";
      check_sig "Fix_pure.twice" "pure";
      check_sig "Fix_state.bump" "writes_shared(1)";
      check_sig "Fix_state.count" "reads_mutable(1)";
      (* transitive: launch's own text is clean, the write flows in *)
      check_sig "Fix_writer.work" "writes_shared(1)";
      check_sig "Fix_writer.middle" "writes_shared(1)";
      (* taint propagates up the drive -> step -> roll chain *)
      check_sig "Fix_taint.roll" "nondeterministic";
      check_sig "Fix_taint.drive" "nondeterministic";
      (* the even/odd cycle converges with both effects on both members *)
      check_sig "Fix_cycle.even" "writes_shared(1) reads_mutable(1)";
      check_sig "Fix_cycle.odd" "writes_shared(1) reads_mutable(1)";
      (* raises escape boom and main, are caught in guarded/safe_main *)
      Alcotest.(check bool) "boom raises Overflow" true
        (contains
           (signature_of r "Fbp_lint_fixtures.Fix_raise.boom")
           "raises(Overflow)");
      check_sig "Fix_raise.guarded" "pure";
      check_sig "Fix_raise.safe_main" "pure")

let test_ip_seeded_race () =
  with_fixtures (fun _ _ r ->
      (* the syntactic rule sees nothing: fix_writer.ml has no mutable
         state and fix_state.ml has no parallelism *)
      (match fixture_root with
      | Some root when Sys.file_exists (Filename.concat root "fix_writer.ml")
        ->
        let ic = open_in (Filename.concat root "fix_writer.ml") in
        let src =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        Alcotest.(check bool) "syntactic pass misses the race" false
          (has_rule "domain-safety" (lint ~path:"lib/fake/fix_writer.ml" src))
      | _ -> ());
      (* the interprocedural pass reports it with the cross-module chain *)
      let hit =
        List.find_opt
          (fun (d : D.t) ->
            String.equal d.D.rule "domain-safety"
            && contains d.D.msg "Fix_state.bump"
            && contains d.D.file "fix_writer.ml")
          r.Ip.diagnostics
      in
      match hit with
      | None ->
        Alcotest.fail
          ("seeded transitive race not found in:\n"
          ^ String.concat "\n" (List.map D.to_text r.Ip.diagnostics))
      | Some d ->
        Alcotest.(check bool) "chain names the middle hop" true
          (contains d.D.msg "Fix_writer.middle"))

let test_ip_determinism_and_raises () =
  with_fixtures (fun _ _ r ->
      Alcotest.(check bool) "taint reported at roll" true
        (List.exists
           (fun (d : D.t) ->
             String.equal d.D.rule "determinism"
             && contains d.D.file "fix_taint.ml"
             && contains d.D.msg "Fix_taint.drive")
           r.Ip.diagnostics);
      Alcotest.(check bool) "Overflow escaping main reported" true
        (List.exists
           (fun (d : D.t) ->
             String.equal d.D.rule "error-taxonomy"
             && contains d.D.msg "Overflow"
             && contains d.D.msg "Fix_raise.main")
           r.Ip.diagnostics);
      Alcotest.(check bool) "guarded entries stay quiet" false
        (List.exists
           (fun (d : D.t) ->
             String.equal d.D.rule "error-taxonomy"
             && (contains d.D.msg "safe_main"
                || contains d.D.msg "typed_main"))
           r.Ip.diagnostics))

let render_result r =
  String.concat "\n" (List.map D.to_text r.Ip.diagnostics)
  ^ "\n"
  ^ String.concat "\n"
      (List.map (fun (f, s) -> f ^ " : " ^ s) r.Ip.signatures)

let test_ip_byte_stable () =
  with_fixtures (fun cfg units r ->
      let again = Ip.analyze_units cfg units [] in
      Alcotest.(check string)
        "two fixture analyses render identically" (render_result r)
        (render_result again));
  (* e2e over the real library tree when its artifacts are reachable *)
  let lib = "../lib" in
  if Sys.file_exists lib && Sys.is_directory lib then begin
    let units, errors = Cl.scan ~roots:[ lib ] in
    if not (List.is_empty units) then begin
      let cfg = Ip.default_config ~cmt_roots:[ lib ] in
      let a = Ip.analyze_units cfg units errors in
      let b = Ip.analyze_units cfg units errors in
      Alcotest.(check string)
        "two lib/ analyses render identically" (render_result a)
        (render_result b);
      Alcotest.(check bool) "a real number of units" true
        (a.Ip.units_loaded > 30)
    end
  end

let test_repo_is_clean () =
  (* the repo lints itself clean: same invariant CI enforces via @lint.
     The dune test sandbox has no source tree; skip there (the @lint
     alias still covers it). *)
  if Sys.file_exists "lib" && Sys.is_directory "lib" then begin
    let report = Lint.run_paths [ "lib"; "bin" ] in
    Alcotest.(check bool)
      ("no findings, got:\n" ^ Lint.render_text report)
      false (Lint.failed report);
    Alcotest.(check bool) "scanned a real number of files" true
      (report.Lint.files_scanned > 40)
  end

let suite =
  [
    Alcotest.test_case "domain-safety rule" `Quick test_domain_safety;
    Alcotest.test_case "float-discipline rule" `Quick test_float_discipline;
    Alcotest.test_case "determinism rule" `Quick test_determinism;
    Alcotest.test_case "error-taxonomy rule" `Quick test_error_taxonomy;
    Alcotest.test_case "io-discipline rule" `Quick test_io_discipline;
    Alcotest.test_case "obs-discipline rule" `Quick test_obs_discipline;
    Alcotest.test_case "suppression honored" `Quick test_suppression_honored;
    Alcotest.test_case "suppression wrong rule" `Quick test_suppression_wrong_rule;
    Alcotest.test_case "suppression malformed" `Quick test_suppression_malformed;
    Alcotest.test_case "suppression unused" `Quick test_suppression_unused;
    Alcotest.test_case "report shapes" `Quick test_report_shapes;
    Alcotest.test_case "unreadable file" `Quick test_parse_error_is_reported;
    Alcotest.test_case "baseline ratchet" `Quick test_ratchet;
    Alcotest.test_case "deferred suppression staleness" `Quick
      test_suppression_defer;
    Alcotest.test_case "interproc signatures" `Quick test_ip_signatures;
    Alcotest.test_case "interproc seeded race" `Quick test_ip_seeded_race;
    Alcotest.test_case "interproc determinism+raises" `Quick
      test_ip_determinism_and_raises;
    Alcotest.test_case "interproc byte-stable" `Quick test_ip_byte_stable;
    Alcotest.test_case "repo lints clean" `Quick test_repo_is_clean;
  ]
