(* Transitive *read* of shared mutable state from a parallel closure:
   racing an unsynchronized Hashtbl reader against any writer is still a
   crash in OCaml, so reads count too. *)

let table : (int, int) Hashtbl.t = Hashtbl.create 8

let lookup k = Hashtbl.find_opt table k

let scan () = Fbp_util.Pool.run_chunks ~n_chunks:2 (fun c -> ignore (lookup c))
