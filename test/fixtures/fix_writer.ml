(* The seeded transitive race the syntactic rule cannot see: the closure
   handed to Pool.run_chunks is textually clean — the write to shared
   state sits two calls down, in another module.  Only the
   interprocedural pass connects launch -> middle -> work ->
   Fix_state.bump -> incr Fix_state.hits. *)

let work c =
  Fix_state.bump ();
  c

let middle c = work c

let launch () =
  Fbp_util.Pool.run_chunks ~n_chunks:2 (fun c -> ignore (middle c))
