(* Raise taxonomy fixture: [main] lets a bare exception escape the
   (test-configured) CLI entry; [safe_main] catches it; [typed_main]
   resolves to the Fbp_error taxonomy, which is sanctioned. *)

exception Overflow

let boom () = raise Overflow

let guarded () = try boom () with Overflow -> ()

let main () = boom ()

let safe_main () = guarded ()

let typed_main () =
  Fbp_resilience.Fbp_error.raise_error
    (Fbp_resilience.Fbp_error.Internal { site = "fixture"; msg = "typed" })
