(* Pure functions: the analysis must report "pure" for every binding,
   including self-recursion (the fixpoint must not invent effects). *)

let add a b = a + b

let rec fact n = if n <= 1 then 1 else n * fact (n - 1)

let twice f x = f (f x)
