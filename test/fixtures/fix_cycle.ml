(* Mutual recursion around shared state: the fixpoint must terminate on
   the even/odd cycle and both members must end up with the write that
   only [odd] performs locally.  [run] then reaches it from a parallel
   region through the cycle. *)

let tick = ref 0

let rec even n = if n = 0 then ignore !tick else odd (n - 1)

and odd n = if n = 0 then incr tick else even (n - 1)

let run () = Fbp_util.Pool.fork2 (fun () -> even 4; 0) (fun () -> odd 3; 1)
