(* Nondeterminism two calls below the entry point: the tests run the
   determinism rule with [drive] as the deterministic entry and expect
   the taint at [roll] to be reported with its call chain. *)

let roll n = Random.int n

let step n = roll n

let drive n = step n
