(* Module-level mutable state with accessor functions.  On its own this
   is fine; the race only appears when another module's parallel closure
   reaches [bump] (see Fix_writer). *)

let hits = ref 0

let bump () = incr hits

let count () = !hits
