(* Tests for fbp_util: deterministic RNG, heap, union-find, stats, tables. *)

open Fbp_util

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr equal
  done;
  Alcotest.(check bool) "streams differ" true (!equal < 4)

let test_rng_float_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_int_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_split_independent () =
  let r = Rng.create 5 in
  let s = Rng.split r in
  let x = Rng.next_int64 s in
  (* Splitting then advancing the parent must not affect the child stream. *)
  let r2 = Rng.create 5 in
  let s2 = Rng.split r2 in
  ignore (Rng.next_int64 r2);
  Alcotest.(check int64) "child unaffected by parent" x (Rng.next_int64 s2)

let test_rng_shuffle_permutation () =
  let r = Rng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_pq_ordering () =
  let pq = Pq.create () in
  List.iter (fun k -> Pq.push pq k (int_of_float (k *. 10.))) [ 3.0; 1.0; 2.0; 0.5; 4.0 ];
  let keys = ref [] in
  let rec drain () =
    match Pq.pop pq with
    | None -> ()
    | Some (k, _) ->
      keys := k :: !keys;
      drain ()
  in
  drain ();
  Alcotest.(check (list (float 0.0))) "sorted" [ 4.0; 3.0; 2.0; 1.0; 0.5 ] !keys

let test_pq_clear () =
  let pq = Pq.create () in
  Pq.push pq 1.0 "a";
  Pq.clear pq;
  Alcotest.(check bool) "empty" true (Pq.is_empty pq);
  Alcotest.(check (option (pair (float 0.0) string))) "pop none" None (Pq.pop pq)

let prop_pq_heap_sort =
  QCheck.Test.make ~name:"pq pops keys in nondecreasing order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun keys ->
      let pq = Pq.create () in
      List.iter (fun k -> Pq.push pq k ()) keys;
      let out = ref [] in
      let rec drain () =
        match Pq.pop pq with
        | None -> ()
        | Some (k, ()) ->
          out := k :: !out;
          drain ()
      in
      drain ();
      let out = List.rev !out in
      List.length out = List.length keys
      && out = List.sort compare keys)

let test_union_find () =
  let uf = Union_find.create 6 in
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  Union_find.union uf 1 2;
  Alcotest.(check bool) "0~3" true (Union_find.same uf 0 3);
  Alcotest.(check bool) "0!~4" false (Union_find.same uf 0 4);
  let groups, n = Union_find.groups uf in
  Alcotest.(check int) "3 groups" 3 n;
  Alcotest.(check int) "0 and 3 same group" groups.(0) groups.(3);
  Alcotest.(check bool) "4 and 5 differ" true (groups.(4) <> groups.(5))

let prop_union_find_transitive =
  QCheck.Test.make ~name:"union-find equivalence is transitive" ~count:100
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> Union_find.union uf a b) pairs;
      (* find is idempotent and consistent with same *)
      let ok = ref true in
      for i = 0 to 19 do
        for j = 0 to 19 do
          let same = Union_find.same uf i j in
          let find_eq = Union_find.find uf i = Union_find.find uf j in
          if same <> find_eq then ok := false
        done
      done;
      !ok)

let test_stats_basic () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean a);
  check_float "sum" 10.0 (Stats.sum a);
  let lo, hi = Stats.min_max a in
  check_float "min" 1.0 lo;
  check_float "max" 4.0 hi;
  check_float "median" 2.5 (Stats.percentile a 0.5);
  check_float "p0" 1.0 (Stats.percentile a 0.0);
  check_float "p100" 4.0 (Stats.percentile a 1.0)

let test_stats_edge_cases () =
  let a = [| 3.0; 1.0; 2.0 |] in
  (* out-of-range p used to index out of bounds; now clamps to [0, 1] *)
  check_float "p < 0 clamps to min" 1.0 (Stats.percentile a (-0.5));
  check_float "p > 1 clamps to max" 3.0 (Stats.percentile a 2.0);
  (* NaN sorts arbitrarily under polymorphic compare and poisons min/max;
     both functions must reject it outright *)
  let nan_data = [| 1.0; Float.nan; 2.0 |] in
  Alcotest.check_raises "percentile rejects NaN data"
    (Invalid_argument "Stats.percentile: NaN input") (fun () ->
      ignore (Stats.percentile nan_data 0.5));
  Alcotest.check_raises "percentile rejects NaN p"
    (Invalid_argument "Stats.percentile: NaN p") (fun () ->
      ignore (Stats.percentile a Float.nan));
  Alcotest.check_raises "min_max rejects NaN"
    (Invalid_argument "Stats.min_max: NaN input") (fun () ->
      ignore (Stats.min_max nan_data))

let test_stats_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [| 1.0; 4.0 |]);
  check_float "geomean of equal" 3.0 (Stats.geomean [| 3.0; 3.0; 3.0 |])

let test_stats_stddev () =
  check_float "stddev" (sqrt (14.0 /. 3.0)) (Stats.stddev [| 1.0; 2.0; 3.0; 6.0 |]);
  check_float "single value" 0.0 (Stats.stddev [| 5.0 |])

let test_duration () =
  Alcotest.(check string) "hms" "1:02:03" (Duration.to_hms 3723.4);
  Alcotest.(check string) "zero" "0:00:00" (Duration.to_hms 0.0);
  Alcotest.(check string) "negative clamped" "0:00:00" (Duration.to_hms (-5.0));
  Alcotest.(check string) "sub-second" "0.500s" (Duration.pretty 0.5)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Table.create ~title:"T" ~header:[ "a"; "bb" ] ~aligns:[ Table.Left; Table.Right ] () in
  Table.add_row t [ "x"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "yy"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains row" true (contains_sub s "yy")

let test_table_mismatch () =
  let t = Table.create ~title:"T" ~header:[ "a"; "b" ] () in
  Alcotest.check_raises "row arity" (Invalid_argument "Table.add_row: wrong number of columns")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_formatters () =
  Alcotest.(check string) "pct" "99.3%" (Table.fmt_pct 0.993);
  Alcotest.(check string) "k (sub-million)" "857k" (Table.fmt_k 857123);
  Alcotest.(check string) "small" "42" (Table.fmt_k 42);
  Alcotest.(check string) "M" "9.3M" (Table.fmt_k 9316938)

let test_parallel_map_matches_sequential () =
  let a = Array.init 1000 (fun i -> i) in
  let f i = (i * i) + 1 in
  let seq = Array.map f a in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" d) seq
        (Parallel.map_array ~domains:d f a))
    [ 1; 2; 3; 8 ]

let test_parallel_empty_and_small () =
  Alcotest.(check (array int)) "empty" [||] (Parallel.map_array ~domains:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "singleton" [| 7 |]
    (Parallel.map_array ~domains:4 (fun x -> x + 1) [| 6 |])

let test_timer_monotone () =
  let t = Timer.create () in
  Timer.start t;
  ignore (Sys.opaque_identity (Array.init 10000 (fun i -> i * i)));
  Timer.stop t;
  Alcotest.(check bool) "elapsed >= 0" true (Timer.elapsed t >= 0.0);
  let before = Timer.elapsed t in
  (* stopped timer does not advance *)
  ignore (Sys.opaque_identity (Array.init 10000 (fun i -> i * i)));
  check_float "frozen when stopped" before (Timer.elapsed t)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "pq ordering" `Quick test_pq_ordering;
    Alcotest.test_case "pq clear" `Quick test_pq_clear;
    qcheck prop_pq_heap_sort;
    Alcotest.test_case "union-find basic" `Quick test_union_find;
    qcheck prop_union_find_transitive;
    Alcotest.test_case "stats basic" `Quick test_stats_basic;
    Alcotest.test_case "stats edge cases" `Quick test_stats_edge_cases;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "duration formatting" `Quick test_duration;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity check" `Quick test_table_mismatch;
    Alcotest.test_case "table formatters" `Quick test_table_formatters;
    Alcotest.test_case "parallel map = sequential" `Quick test_parallel_map_matches_sequential;
    Alcotest.test_case "parallel edge cases" `Quick test_parallel_empty_and_small;
    Alcotest.test_case "timer" `Quick test_timer_monotone;
  ]
