(* Tests for the quality flight recorder: JSON schema round-trip (exact,
   including non-finite floats), schema/version rejection, the diff-record
   regression gate, the HTML report renderer, metrics validation, and the
   GC sampling hooks — plus one end-to-end placer run with the recorder
   armed.  Every test resets the global recorder in a [finally]. *)

module R = Fbp_obs.Recorder
module Obs = Fbp_obs.Obs

let with_recorder f =
  Fun.protect
    ~finally:(fun () ->
      R.disable ();
      R.reset ();
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      R.reset ();
      R.enable ();
      f ())

(* ---------- fixtures ---------- *)

let gc1 =
  {
    R.minor_words = 1234.0;
    major_words = 56.5;
    major_collections = 2;
    compactions = 0;
    heap_words = 262144;
  }

let level_fixture ?(hpwl = 8250.75) ?(mb_violations = 3) ?(mcf_cost = 991.25)
    ~level () =
  {
    R.level;
    nx = 1 lsl level;
    ny = 1 lsl level;
    n_windows = 4 * level;
    n_pieces = 7 * level;
    flow_nodes = 68;
    flow_edges = 276;
    hpwl;
    density_overflow = 0.0125;
    mb_violations;
    cg_iterations = 59;
    cg_residual = 8.32e-06;
    cg_converged = true;
    mcf_cost;
    mcf_rounds = 29;
    waves = 4;
    shipped_cells = 379;
    fallback_cells = 0;
    qp_time = 0.003;
    flow_time = 0.0015;
    realization_time = 0.0056;
    gc = gc1;
  }

let record_fixture ?(hpwl = 8084.5) ?(violations = 0) ?(legal = true)
    ?(total_time = 0.0464) () =
  {
    R.version = R.schema_version;
    provenance =
      {
        R.design = "smoke.book";
        cells = 400;
        nets = 466;
        movebounds = 2;
        seed = Some 7;
        tool = "fbp";
        config = [ ("domains", "1"); ("strict", "false") ];
        host = None;
      };
    levels =
      [
        level_fixture ~level:1 ~hpwl:8474.17 ();
        (* an infeasible-verdict level carries [nan] for the flow cost;
           the round-trip must preserve it (JSON null <-> nan) *)
        level_fixture ~level:2 ~hpwl:(hpwl +. 10.0) ~mcf_cost:Float.nan ();
      ];
    legalization =
      Some
        {
          R.leg_hpwl = hpwl;
          leg_density_overflow = 0.0129;
          leg_mb_violations = violations;
          leg_time = 0.0003;
          spilled = 5;
          failed = 0;
          avg_displacement = 3.51;
          max_displacement = 26.45;
        };
    density =
      Some
        {
          R.dnx = 2;
          dny = 2;
          usage = [| 0.5; 0.25; 0.0; 1.75 |];
          capacity = [| 1.0; 1.0; 0.0; 1.0 |];
        };
    totals =
      Some
        {
          R.hpwl;
          global_time = 0.046;
          legalize_time = 0.0004;
          total_time;
          legal;
          violations;
        };
    metrics = None;
    profile = None;
  }

(* ---------- schema round-trip ---------- *)

let test_roundtrip () =
  let r = record_fixture () in
  match R.of_json (R.to_json r) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok r' ->
    Alcotest.(check bool) "field-by-field equal" true (R.equal r r');
    (* spot-check the awkward values explicitly *)
    let l2 = List.nth r'.R.levels 1 in
    Alcotest.(check bool) "nan mcf_cost survives" true (Float.is_nan l2.R.mcf_cost);
    Alcotest.(check (option int)) "seed survives" (Some 7)
      r'.R.provenance.R.seed;
    (match r'.R.density with
     | None -> Alcotest.fail "density dropped"
     | Some d ->
       Alcotest.(check (array (float 0.0))) "usage exact"
         [| 0.5; 0.25; 0.0; 1.75 |] d.R.usage)

let test_roundtrip_with_metrics () =
  with_recorder (fun () ->
      Obs.reset ();
      Obs.enable ();
      Obs.count ~n:3 "cg.solves";
      Obs.observe "cg.iterations" 12.0;
      let m =
        match Obs.Json.parse (Obs.metrics_json ()) with
        | Ok m -> m
        | Error e -> Alcotest.failf "metrics_json unparseable: %s" e
      in
      let r = { (record_fixture ()) with R.metrics = Some m } in
      match R.of_json (R.to_json r) with
      | Error e -> Alcotest.failf "round-trip parse failed: %s" e
      | Ok r' -> Alcotest.(check bool) "equal incl. metrics" true (R.equal r r'))

let test_rejects_bad_documents () =
  (match R.of_json "{\"schema\":\"not-a-run-record\",\"version\":1}" with
   | Ok _ -> Alcotest.fail "accepted wrong schema name"
   | Error _ -> ());
  (match
     R.of_json
       (Printf.sprintf "{\"schema\":\"fbp-run-record\",\"version\":%d}"
          (R.schema_version + 1))
   with
   | Ok _ -> Alcotest.fail "accepted a future version"
   | Error _ -> ());
  match R.of_json "{not json" with
  | Ok _ -> Alcotest.fail "accepted junk"
  | Error _ -> ()

let test_file_roundtrip () =
  let path = Filename.temp_file "fbp_record" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let r = record_fixture () in
      R.write_file path r;
      match R.read_file path with
      | Error e -> Alcotest.failf "read_file: %s" e
      | Ok r' -> Alcotest.(check bool) "file round-trip" true (R.equal r r'))

(* ---------- diff-record gate ---------- *)

let regressed_metrics c = List.map (fun g -> g.R.metric) c.R.regressions

let test_diff_self_clean () =
  let r = record_fixture () in
  let c = R.diff ~max_hpwl_regress:0.02 ~max_time_regress:0.25 ~base:r ~cand:r () in
  Alcotest.(check (list string)) "no regressions vs self" [] (regressed_metrics c);
  Alcotest.(check bool) "prints comparison lines" true (c.R.lines <> [])

let test_diff_hpwl_regression () =
  let base = record_fixture ~hpwl:8000.0 () in
  let cand = record_fixture ~hpwl:(8000.0 *. 1.05) () in
  let c =
    R.diff ~max_hpwl_regress:0.02 ~max_time_regress:0.25 ~base ~cand ()
  in
  Alcotest.(check (list string)) "hpwl gated" [ "hpwl" ] (regressed_metrics c);
  (* the same 5% bump passes with a 10% budget *)
  let c' = R.diff ~max_hpwl_regress:0.10 ~max_time_regress:0.25 ~base ~cand () in
  Alcotest.(check (list string)) "within budget" [] (regressed_metrics c')

let test_diff_improvement_never_regresses () =
  let base = record_fixture ~hpwl:8000.0 ~total_time:1.0 () in
  let cand = record_fixture ~hpwl:6000.0 ~total_time:0.2 () in
  let c = R.diff ~max_hpwl_regress:0.0 ~max_time_regress:0.0 ~base ~cand () in
  Alcotest.(check (list string)) "improvement passes zero budget" []
    (regressed_metrics c)

let test_diff_violations_and_legality () =
  let base = record_fixture ~violations:0 ~legal:true () in
  let cand = record_fixture ~violations:4 ~legal:false () in
  let c = R.diff ~max_hpwl_regress:0.5 ~max_time_regress:5.0 ~base ~cand () in
  let metrics = regressed_metrics c in
  Alcotest.(check bool) "violation increase gated" true
    (List.mem "violations" metrics);
  Alcotest.(check bool) "legal->illegal gated" true (List.mem "legal" metrics)

(* ---------- HTML report ---------- *)

let count_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_report_smoke () =
  let r = record_fixture () in
  let html = Fbp_viz.Report.render r in
  Alcotest.(check bool) "has svg" true (count_substring html "<svg" > 0);
  Alcotest.(check bool) "has convergence chart" true
    (count_substring html "id=\"convergence\"" = 1);
  Alcotest.(check bool) "has density heatmap" true
    (count_substring html "id=\"density-heatmap\"" = 1);
  Alcotest.(check int) "one table row per level" (List.length r.R.levels)
    (count_substring html "class=\"level-row\"");
  (* provenance strings are escaped before being interpolated *)
  let evil =
    { r with
      R.provenance =
        { r.R.provenance with R.design = "<script>alert(1)</script>" } }
  in
  let html' = Fbp_viz.Report.render evil in
  Alcotest.(check int) "html-escapes provenance" 0
    (count_substring html' "<script>alert(1)</script>")

(* ---------- metrics validation + GC sampling ---------- *)

let test_validate_metrics () =
  (match Obs.validate_metrics "{\"counters\":{},\"histograms\":{}}" with
   | Ok n -> Alcotest.(check int) "empty doc is valid" 0 n
   | Error e -> Alcotest.failf "empty doc rejected: %s" e);
  (match
     Obs.validate_metrics
       "{\"counters\":{\"a\":1,\"b\":2},\"histograms\":{\"h\":{\"count\":0}}}"
   with
   | Ok n -> Alcotest.(check int) "counts metrics" 3 n
   | Error _ -> Alcotest.fail "valid doc rejected");
  (match
     Obs.validate_metrics "{\"counters\":{\"a\":1.5},\"histograms\":{}}"
   with
   | Ok _ -> Alcotest.fail "accepted fractional counter"
   | Error _ -> ());
  (match
     Obs.validate_metrics "{\"counters\":{\"b\":1,\"a\":2},\"histograms\":{}}"
   with
   | Ok _ -> Alcotest.fail "accepted unsorted keys"
   | Error _ -> ());
  match
    Obs.validate_metrics
      "{\"counters\":{},\"histograms\":{\"h\":{\"count\":3,\"sum\":6}}}"
  with
  | Ok _ -> Alcotest.fail "accepted summary without percentiles"
  | Error _ -> ()

let test_sample_gc () =
  with_recorder (fun () ->
      Obs.reset ();
      Obs.enable ();
      Obs.sample_gc ();
      ignore (Sys.opaque_identity (Array.make 100_000 0.0));
      Obs.sample_gc ();
      Alcotest.(check bool) "gc.major_collections counter present" true
        (Obs.counter_value "gc.major_collections" >= 0);
      Alcotest.(check int) "heap sampled at each boundary" 2
        (Array.length (Obs.histogram_values "gc.heap_words"));
      (* the emitted document must satisfy its own validator *)
      match Obs.validate_metrics (Obs.metrics_json ()) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "metrics_json fails validation: %s" e)

let test_gc_boundary_accumulates () =
  with_recorder (fun () ->
      let _first = R.gc_boundary () in
      (* small boxed values land in the minor heap, whose allocation count
         quick_stat tracks exactly (large arrays go straight to the major
         heap and are only counted at the next slice) *)
      ignore (Sys.opaque_identity (List.init 10_000 float_of_int));
      let d = R.gc_boundary () in
      Alcotest.(check bool) "allocation observed between boundaries" true
        (d.R.minor_words > 0.0 || d.R.major_words > 0.0);
      Alcotest.(check bool) "heap size is absolute" true (d.R.heap_words > 0))

let test_disabled_recorder_is_empty () =
  R.disable ();
  R.reset ();
  R.record_level (level_fixture ~level:1 ());
  R.set_totals
    {
      R.hpwl = 1.0;
      global_time = 0.0;
      legalize_time = 0.0;
      total_time = 0.0;
      legal = true;
      violations = 0;
    };
  let r = R.current () in
  Alcotest.(check int) "no levels recorded while disabled" 0
    (List.length r.R.levels);
  Alcotest.(check bool) "no totals recorded while disabled" true
    (r.R.totals = None)

(* ---------- end-to-end ---------- *)

let test_end_to_end_placer_run () =
  with_recorder (fun () ->
      Obs.reset ();
      Obs.enable ();
      let d = Fbp_netlist.Generator.quick ~seed:11 ~name:"rec_e2e" 300 in
      let inst = Fbp_movebound.Instance.unconstrained d in
      match Fbp_workloads.Runner.run_fbp inst with
      | Error e ->
        Alcotest.failf "placer failed: %s" (Fbp_resilience.Fbp_error.to_string e)
      | Ok m ->
        let r = R.current () in
        Alcotest.(check bool) "levels recorded" true (r.R.levels <> []);
        List.iter
          (fun (l : R.level) ->
            Alcotest.(check bool) "level hpwl positive" true (l.R.hpwl > 0.0);
            Alcotest.(check bool) "grid sane" true (l.R.nx > 0 && l.R.ny > 0))
          r.R.levels;
        (match r.R.legalization with
         | None -> Alcotest.fail "legalization snapshot missing"
         | Some lg ->
           Alcotest.(check (float 1e-9)) "legalized hpwl matches runner"
             m.Fbp_workloads.Runner.hpwl lg.R.leg_hpwl);
        (match r.R.totals with
         | None -> Alcotest.fail "totals missing"
         | Some t ->
           Alcotest.(check (float 1e-9)) "total hpwl matches runner"
             m.Fbp_workloads.Runner.hpwl t.R.hpwl;
           Alcotest.(check int) "violations match" m.Fbp_workloads.Runner.violations
             t.R.violations);
        (match r.R.density with
         | None -> Alcotest.fail "density map missing"
         | Some dm ->
           Alcotest.(check int) "density array sized nx*ny"
             (dm.R.dnx * dm.R.dny)
             (Array.length dm.R.usage));
        (* and the whole record survives serialization *)
        (match R.of_json (R.to_json r) with
         | Error e -> Alcotest.failf "e2e record does not round-trip: %s" e
         | Ok r' -> Alcotest.(check bool) "e2e round-trip" true (R.equal r r'));
        (* the report renders from a real record, one row per level *)
        let html = Fbp_viz.Report.render r in
        Alcotest.(check int) "report rows = levels" (List.length r.R.levels)
          (count_substring html "class=\"level-row\""))

let suite =
  [
    Alcotest.test_case "json round-trip exact" `Quick test_roundtrip;
    Alcotest.test_case "round-trip with metrics" `Quick test_roundtrip_with_metrics;
    Alcotest.test_case "rejects bad documents" `Quick test_rejects_bad_documents;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "diff: self is clean" `Quick test_diff_self_clean;
    Alcotest.test_case "diff: hpwl gate" `Quick test_diff_hpwl_regression;
    Alcotest.test_case "diff: improvements pass" `Quick
      test_diff_improvement_never_regresses;
    Alcotest.test_case "diff: violations + legality" `Quick
      test_diff_violations_and_legality;
    Alcotest.test_case "report html smoke" `Quick test_report_smoke;
    Alcotest.test_case "validate_metrics" `Quick test_validate_metrics;
    Alcotest.test_case "sample_gc" `Quick test_sample_gc;
    Alcotest.test_case "gc_boundary" `Quick test_gc_boundary_accumulates;
    Alcotest.test_case "disabled recorder records nothing" `Quick
      test_disabled_recorder_is_empty;
    Alcotest.test_case "end-to-end placer run" `Quick test_end_to_end_placer_run;
  ]
