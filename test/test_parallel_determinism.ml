(* PR 5 determinism suite: the pool/kernel stack must produce bit-identical
   results at any domain count, survive exceptions without losing workers,
   and the symbolic-reuse assembly path must equal the fresh path bitwise.

   "Bit-identical" is checked with [Alcotest.float 0.0] (zero tolerance) or
   by comparing [Int64.bits_of_float] directly. *)

open Fbp_netlist
open Fbp_core
module Pool = Fbp_util.Pool
module Parallel = Fbp_util.Parallel
module Vec = Fbp_linalg.Vec
module Csr = Fbp_linalg.Csr

let bits = Int64.bits_of_float

(* Run [f] with the pool default set to [d], restoring the previous default
   afterwards (the suites share one process). *)
let with_domains d f =
  let prev = Pool.get_default_domains () in
  Pool.set_default_domains d;
  Fun.protect ~finally:(fun () -> Pool.set_default_domains prev) f

(* ---------- chunking is a pure function of n ---------- *)

let test_chunking_pure () =
  List.iter
    (fun n ->
      let k = Pool.n_chunks ~grain:64 n in
      Alcotest.(check bool) "at least one chunk" true (n <= 0 || k >= 1);
      (* chunks tile [0, n) exactly, in order *)
      let covered = ref 0 in
      for c = 0 to k - 1 do
        let lo, hi = Pool.chunk_bounds ~n ~n_chunks:k c in
        Alcotest.(check int) "contiguous" !covered lo;
        Alcotest.(check bool) "nonempty" true (hi > lo);
        covered := hi
      done;
      if k > 0 then Alcotest.(check int) "covers n" n !covered)
    [ 1; 63; 64; 65; 1000; 4096; 100_000 ]

(* ---------- reductions bit-identical across domain counts ---------- *)

let test_dot_bitwise_across_domains () =
  let rng = Fbp_util.Rng.create 11 in
  let n = 30_000 in
  let a = Array.init n (fun _ -> Fbp_util.Rng.range rng (-1.0) 1.0) in
  let b = Array.init n (fun _ -> Fbp_util.Rng.range rng (-1.0) 1.0) in
  let reference = with_domains 1 (fun () -> (Vec.dot a b, Vec.sqnorm2 a)) in
  List.iter
    (fun d ->
      let got = with_domains d (fun () -> (Vec.dot a b, Vec.sqnorm2 a)) in
      Alcotest.(check int64)
        (Printf.sprintf "dot bits at %d domains" d)
        (bits (fst reference)) (bits (fst got));
      Alcotest.(check int64)
        (Printf.sprintf "sqnorm2 bits at %d domains" d)
        (bits (snd reference)) (bits (snd got)))
    [ 2; 3; 8 ]

(* ---------- spmv bit-identical across domain counts ---------- *)

let random_system rng n =
  let b = Csr.builder n in
  for i = 0 to n - 1 do
    Csr.add_diag b i (4.0 +. Fbp_util.Rng.float rng);
    let j = Fbp_util.Rng.int rng n in
    if j <> i then Csr.add_spring b i j (0.5 +. Fbp_util.Rng.float rng)
  done;
  b

let test_spmv_bitwise_across_domains () =
  let rng = Fbp_util.Rng.create 23 in
  let n = 9000 in
  let a = Csr.freeze (random_system rng n) in
  let x = Array.init n (fun _ -> Fbp_util.Rng.range rng (-5.0) 5.0) in
  let run d =
    with_domains d (fun () ->
        let out = Array.make n 0.0 in
        Csr.mul a x out;
        out)
  in
  let seq = run 1 in
  List.iter
    (fun d ->
      let par = run d in
      let mismatches = ref 0 in
      for i = 0 to n - 1 do
        if bits seq.(i) <> bits par.(i) then incr mismatches
      done;
      Alcotest.(check int)
        (Printf.sprintf "spmv bits at %d domains" d)
        0 !mismatches)
    [ 2; 8 ]

(* ---------- symbolic reuse equals fresh assembly ---------- *)

(* Fixed topology (seed 31), values drawn from an independent stream — so
   two builders share the triplet (row, col) sequence but not the values,
   exactly the QP-round situation refreeze exists for. *)
let topo_system ~values_seed n =
  let topo_rng = Fbp_util.Rng.create 31 in
  let val_rng = Fbp_util.Rng.create values_seed in
  let b = Csr.builder n in
  for i = 0 to n - 1 do
    Csr.add_diag b i (4.0 +. Fbp_util.Rng.float val_rng);
    let j = Fbp_util.Rng.int topo_rng n in
    if j <> i then Csr.add_spring b i j (0.5 +. Fbp_util.Rng.float val_rng)
  done;
  b

let test_refreeze_bitwise () =
  let n = 500 in
  let _, structure = Csr.freeze_capture (topo_system ~values_seed:1 n) in
  let reference = Csr.freeze (topo_system ~values_seed:2 n) in
  match Csr.refreeze structure (topo_system ~values_seed:2 n) with
  | None -> Alcotest.fail "refreeze rejected an identical topology"
  | Some reused ->
    Alcotest.(check int) "nnz equal" (Csr.nnz reference) (Csr.nnz reused);
    let mismatches = ref 0 in
    Csr.iter_entries reference (fun r c v ->
        if bits (Csr.get reused r c) <> bits v then incr mismatches);
    Alcotest.(check int) "values bit-identical" 0 !mismatches

let test_refreeze_rejects_changed_topology () =
  let base () =
    let b = Csr.builder 4 in
    Csr.add_diag b 0 1.0;
    Csr.add_spring b 0 1 2.0;
    Csr.add_spring b 1 2 3.0;
    b
  in
  let _, structure = Csr.freeze_capture (base ()) in
  (* extra triplet: stream longer than captured *)
  let b2 = base () in
  Csr.add_diag b2 3 1.0;
  (match Csr.refreeze structure b2 with
  | Some _ -> Alcotest.fail "refreeze accepted a longer stream"
  | None -> ());
  (* same length, different endpoint in one spring *)
  let b3 = Csr.builder 4 in
  Csr.add_diag b3 0 1.0;
  Csr.add_spring b3 0 1 2.0;
  Csr.add_spring b3 1 3 3.0;
  (match Csr.refreeze structure b3 with
  | Some _ -> Alcotest.fail "refreeze accepted a different stream"
  | None -> ());
  (* unchanged stream still accepted *)
  match Csr.refreeze structure (base ()) with
  | Some _ -> ()
  | None -> Alcotest.fail "refreeze rejected the captured stream"

(* ---------- exception propagation + pool reuse ---------- *)

exception Boom of int

let test_pool_exceptions_and_reuse () =
  with_domains 4 (fun () ->
      (* first failure in chunk order wins, even when a later chunk also
         raises and scheduling is dynamic *)
      (match
         Pool.run_chunks ~domains:4 ~n_chunks:8 (fun c ->
             if c = 2 || c = 5 then raise (Boom c))
       with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom c -> Alcotest.(check int) "first chunk error" 2 c);
      (* fork2: f's exception takes precedence over g's *)
      (match
         Pool.fork2 ~domains:2
           (fun () -> raise (Boom 1))
           (fun () -> raise (Boom 2))
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom c -> Alcotest.(check int) "fork2 f wins" 1 c);
      (* the pool is immediately reusable after failures *)
      let a = Array.init 1000 (fun i -> i) in
      let doubled = Parallel.map_array ~domains:4 (fun v -> 2 * v) a in
      Alcotest.(check bool) "pool reusable after exceptions" true
        (Array.for_all2 (fun v w -> w = 2 * v) a doubled);
      Alcotest.(check bool) "workers were actually spawned" true
        (Pool.n_workers_spawned () >= 1))

(* ---------- lease: reuse across submissions + error semantics ---------- *)

let test_lease_reuse_and_errors () =
  with_domains 4 (fun () ->
      let l = Pool.lease ~domains:4 () in
      Fun.protect
        ~finally:(fun () -> Pool.release_lease l)
        (fun () ->
          let n = 10_000 in
          let slots = Array.make n 0 in
          (* five consecutive rounds reuse the same parked helpers: each
             batch costs one submission, not one dispatch per worker *)
          for round = 1 to 5 do
            let d0 = Pool.n_dispatches () in
            Pool.lease_run l ~n_chunks:8 (fun c ->
                let lo, hi = Pool.chunk_bounds ~n ~n_chunks:8 c in
                for i = lo to hi - 1 do
                  slots.(i) <- slots.(i) + round
                done);
            Alcotest.(check bool)
              (Printf.sprintf "round %d costs at most one dispatch" round)
              true
              (Pool.n_dispatches () - d0 <= 1)
          done;
          Alcotest.(check bool) "all slots saw all five rounds" true
            (Array.for_all (fun v -> v = 15) slots);
          (* first failure in chunk order wins under dynamic scheduling *)
          (match
             Pool.lease_run l ~n_chunks:8 (fun c ->
                 if c = 3 || c = 6 then raise (Boom c))
           with
          | () -> Alcotest.fail "expected Boom"
          | exception Boom c -> Alcotest.(check int) "first chunk error" 3 c);
          (* the lease stays usable after a failed batch *)
          let hits = Atomic.make 0 in
          Pool.lease_run l ~n_chunks:4 (fun _ -> Atomic.incr hits);
          Alcotest.(check int) "lease reusable after exception" 4
            (Atomic.get hits));
      (* released: further batches are refused, double release is a no-op,
         and the helpers are back on the pool's free list *)
      (match Pool.lease_run l ~n_chunks:2 (fun _ -> ()) with
      | () -> Alcotest.fail "expected Invalid_argument after release"
      | exception Invalid_argument _ -> ());
      Pool.release_lease l;
      let a = Array.init 100 (fun i -> i) in
      let doubled = Parallel.map_array ~domains:4 (fun v -> 2 * v) a in
      Alcotest.(check bool) "pool healthy after release" true
        (Array.for_all2 (fun v w -> w = 2 * v) a doubled))

(* ---------- realization: compact wave snapshot ---------- *)

let test_snapshot_compact () =
  let d = Generator.quick ~seed:41 ~name:"snap" 50 in
  let pos = Placement.copy d.Design.initial in
  let cells = [| 3; 7; 11; 42 |] in
  let xs, ys = Realization.snapshot pos cells in
  Alcotest.(check int) "snapshot is O(cells)" 4 (Array.length xs);
  Array.iteri
    (fun i c ->
      Alcotest.(check int64) "x bits" (bits pos.Placement.x.(c)) (bits xs.(i));
      Alcotest.(check int64) "y bits" (bits pos.Placement.y.(c)) (bits ys.(i)))
    cells;
  (* a later snapshot sees commits from earlier waves (shipped cells) *)
  pos.Placement.x.(7) <- 123.5;
  pos.Placement.y.(7) <- -2.25;
  let xs2, ys2 = Realization.snapshot pos cells in
  Alcotest.(check int64) "sees shipped-cell x" (bits 123.5) (bits xs2.(1));
  Alcotest.(check int64) "sees shipped-cell y" (bits (-2.25)) (bits ys2.(1));
  (* the snapshot is a copy: mutating it never writes through *)
  xs2.(0) <- 999.0;
  Alcotest.(check int64) "snapshot does not alias the placement"
    (bits pos.Placement.x.(3)) (bits xs.(0))

(* ---------- realization: bitwise at 1 vs 8 domains + cost counters ----- *)

let test_realization_counters_and_bitwise () =
  let d = Generator.quick ~seed:61 ~name:"rc" 600 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  let design = inst.Fbp_movebound.Instance.design in
  let nl = design.Design.netlist in
  let regions =
    Fbp_movebound.Regions.decompose ~chip:design.Design.chip
      inst.Fbp_movebound.Instance.movebounds
  in
  let density = Density.create design in
  let grid =
    Grid.create ~chip:design.Design.chip ~nx:4 ~ny:4 ~regions ~density ()
  in
  let model = Fbp_model.build inst regions grid design.Design.initial in
  let sol = Fbp_model.solve model in
  let cell_nets = Netlist.cell_nets nl in
  (* hw_clamp off so the lease path actually runs on small CI machines *)
  let run domains =
    with_domains domains (fun () ->
        let pos = Placement.copy design.Design.initial in
        Fbp_obs.Obs.enable ();
        Fbp_obs.Obs.reset ();
        let stepped = ref 0 in
        let r =
          Realization.realize
            ~on_step:(fun s -> stepped := !stepped + s.Realization.n_cells)
            { Config.default with domains; hw_clamp = false }
            inst regions sol pos ~cell_nets
        in
        let snap = Fbp_obs.Obs.counter_value "realization.snapshot_cells" in
        let disp = Fbp_obs.Obs.counter_value "pool.dispatches" in
        Fbp_obs.Obs.disable ();
        (pos, r, !stepped, snap, disp))
  in
  let p1, r1, s1, snap1, _ = run 1 in
  let p8, r8, s8, snap8, disp8 = run 8 in
  Alcotest.(check (array (float 0.0)))
    "x bit-identical" p1.Placement.x p8.Placement.x;
  Alcotest.(check (array (float 0.0)))
    "y bit-identical" p1.Placement.y p8.Placement.y;
  Alcotest.(check (array int)) "piece assignment identical"
    r1.Realization.piece_of_cell r8.Realization.piece_of_cell;
  Alcotest.(check int) "on_step streams equal" s1 s8;
  Alcotest.(check bool) "flow shipped cells" true
    (r1.Realization.stats.Realization.n_shipped_cells > 0);
  (* snapshot cost is O(wave): exactly the wave member cells (= the cells
     the steps commit), domain-count-invariant, and far below the seed's
     full-copy cost of n_waves * n_cells *)
  Alcotest.(check int) "snapshot_cells = committed step cells" s1 snap1;
  Alcotest.(check int) "snapshot_cells domain-invariant" snap1 snap8;
  Alcotest.(check bool) "snapshot cheaper than per-wave full copies" true
    (snap1 < r1.Realization.stats.Realization.n_waves * Netlist.n_cells nl);
  (* dispatch is O(1) per wave: at most one batch submission per wave plus
     the one-off helper handoffs when the lease is created *)
  Alcotest.(check bool)
    (Printf.sprintf "dispatches amortized (%d for %d waves)" disp8
       r8.Realization.stats.Realization.n_waves)
    true
    (disp8 <= 8 + r8.Realization.stats.Realization.n_waves)

(* ---------- e2e: placer bit-identical at any domain count ---------- *)

let test_placer_bitwise_and_records () =
  let d = Generator.quick ~seed:51 ~name:"det" 500 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  let nl = d.Design.netlist in
  let run domains =
    with_domains domains (fun () ->
        Fbp_obs.Obs.enable ();
        Fbp_obs.Obs.reset ();
        let rep =
          match
            Placer.place ~config:{ Config.default with domains } inst
          with
          | Error e -> Alcotest.fail (Fbp_resilience.Fbp_error.to_string e)
          | Ok rep -> rep
        in
        let records =
          ( Fbp_obs.Obs.counter_value "cg.solves",
            Fbp_obs.Obs.counter_value "cg.nonconverged",
            Fbp_obs.Obs.histogram_values "cg.iterations" )
        in
        Fbp_obs.Obs.disable ();
        (rep.Placer.placement, Hpwl.total nl rep.Placer.placement, records))
  in
  let p1, h1, r1 = run 1 in
  let p8, h8, r8 = run 8 in
  Alcotest.(check (array (float 0.0))) "x bit-identical" p1.Placement.x p8.Placement.x;
  Alcotest.(check (array (float 0.0))) "y bit-identical" p1.Placement.y p8.Placement.y;
  Alcotest.(check int64) "hpwl bit-identical" (bits h1) (bits h8);
  let c1, nc1, it1 = r1 and c8, nc8, it8 = r8 in
  Alcotest.(check int) "cg.solves equal" c1 c8;
  Alcotest.(check int) "cg.nonconverged equal" nc1 nc8;
  Alcotest.(check (array (float 0.0))) "cg.iterations stream equal" it1 it8

let suite =
  [
    Alcotest.test_case "chunking pure in n" `Quick test_chunking_pure;
    Alcotest.test_case "dot bitwise across domains" `Quick
      test_dot_bitwise_across_domains;
    Alcotest.test_case "spmv bitwise across domains" `Quick
      test_spmv_bitwise_across_domains;
    Alcotest.test_case "refreeze bitwise equals freeze" `Quick
      test_refreeze_bitwise;
    Alcotest.test_case "refreeze rejects changed topology" `Quick
      test_refreeze_rejects_changed_topology;
    Alcotest.test_case "pool exceptions + reuse" `Quick
      test_pool_exceptions_and_reuse;
    Alcotest.test_case "lease reuse + errors" `Quick
      test_lease_reuse_and_errors;
    Alcotest.test_case "compact wave snapshot" `Quick test_snapshot_compact;
    Alcotest.test_case "realization counters + bitwise" `Slow
      test_realization_counters_and_bitwise;
    Alcotest.test_case "placer bitwise + run records" `Slow
      test_placer_bitwise_and_records;
  ]
