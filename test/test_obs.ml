(* Tests for the observability subsystem: span nesting and balance, the
   disabled fast path, counters and histograms, trace/metrics JSON emission,
   the minimal JSON parser, and the trace validator.  Every test resets the
   global registry in a [finally] so state cannot leak across suites. *)

module Obs = Fbp_obs.Obs

let with_obs f =
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      Obs.reset ();
      Obs.enable ();
      f ())

(* ---------- primitives ---------- *)

let test_disabled_is_noop () =
  Obs.reset ();
  Obs.disable ();
  Obs.count "c";
  Obs.observe "h" 1.0;
  let r = Obs.span "s" (fun () -> 41 + 1) in
  Alcotest.(check int) "span still runs the body" 42 r;
  Alcotest.(check int) "no counter" 0 (Obs.counter_value "c");
  Alcotest.(check int) "no histogram" 0 (Array.length (Obs.histogram_values "h"));
  Alcotest.(check int) "no events" 0 (Obs.n_events ())

let test_disabled_args_not_evaluated () =
  Obs.reset ();
  Obs.disable ();
  let evaluated = ref false in
  ignore
    (Obs.span "s"
       ~args:(fun () ->
         evaluated := true;
         [ ("k", "v") ])
       (fun () -> ()));
  Alcotest.(check bool) "args thunk skipped when disabled" false !evaluated

let test_counters_and_histograms () =
  with_obs (fun () ->
      Obs.count "a";
      Obs.count ~n:4 "a";
      Obs.count "b";
      Obs.observe "h" 3.0;
      Obs.observe "h" 1.0;
      Alcotest.(check int) "counter accumulates" 5 (Obs.counter_value "a");
      Alcotest.(check int) "independent counter" 1 (Obs.counter_value "b");
      Alcotest.(check int) "untouched counter" 0 (Obs.counter_value "zzz");
      Alcotest.(check (array (float 0.0))) "recording order" [| 3.0; 1.0 |]
        (Obs.histogram_values "h"))

let test_span_balance_on_exception () =
  with_obs (fun () ->
      (try Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> failwith "x"))
       with Failure _ -> ());
      Alcotest.(check int) "2 B + 2 E even under exceptions" 4 (Obs.n_events ());
      match Obs.validate_trace (Obs.trace_json ()) with
      | Ok n -> Alcotest.(check int) "both spans balance" 2 n
      | Error e -> Alcotest.fail e)

let test_nested_spans_balance () =
  with_obs (fun () ->
      Obs.span "l1" (fun () ->
          Obs.span "l2" (fun () -> Obs.span "l3" (fun () -> ()));
          Obs.span "l2b" (fun () -> ()));
      match Obs.validate_trace (Obs.trace_json ()) with
      | Ok n -> Alcotest.(check int) "4 balanced pairs" 4 n
      | Error e -> Alcotest.fail e)

let test_parallel_spans_balance_per_domain () =
  with_obs (fun () ->
      (* probes fire concurrently from realization domains; the validator
         keeps one LIFO stack per tid so the interleaving must still pass *)
      let arr = Array.init 64 Fun.id in
      ignore
        (Fbp_util.Parallel.map_array ~domains:4
           (fun i -> Obs.span "work" (fun () -> i * 2))
           arr);
      match Obs.validate_trace (Obs.trace_json ()) with
      | Ok n -> Alcotest.(check int) "all spans balance" 64 n
      | Error e -> Alcotest.fail e)

(* ---------- JSON emission ---------- *)

let test_metrics_json_shape () =
  with_obs (fun () ->
      Obs.count ~n:3 "cg.solves";
      Obs.observe "cg.iterations" 10.0;
      Obs.observe "cg.iterations" 20.0;
      let j = Obs.metrics_json () in
      match Obs.Json.parse j with
      | Error e -> Alcotest.fail ("metrics must parse: " ^ e)
      | Ok doc ->
        (match Obs.Json.member "counters" doc with
         | Some (Obs.Json.Obj kvs) ->
           Alcotest.(check bool) "counter present" true
             (List.mem_assoc "cg.solves" kvs)
         | _ -> Alcotest.fail "counters object missing");
        (match Obs.Json.member "histograms" doc with
         | Some h ->
           (match Obs.Json.member "cg.iterations" h with
            | Some summary ->
              let num k =
                match Obs.Json.member k summary with
                | Some (Obs.Json.Num v) -> v
                | _ -> Alcotest.failf "summary field %s missing" k
              in
              Alcotest.(check (float 1e-9)) "count" 2.0 (num "count");
              Alcotest.(check (float 1e-9)) "mean" 15.0 (num "mean");
              Alcotest.(check (float 1e-9)) "p50" 15.0 (num "p50");
              Alcotest.(check (float 1e-9)) "max" 20.0 (num "max")
            | None -> Alcotest.fail "cg.iterations summary missing")
         | None -> Alcotest.fail "histograms object missing"))

let test_trace_json_escaping () =
  with_obs (fun () ->
      Obs.span "weird \"name\"\\with\tescapes"
        ~args:(fun () -> [ ("k", "line\nbreak") ])
        (fun () -> ());
      match Obs.validate_trace (Obs.trace_json ()) with
      | Ok n -> Alcotest.(check int) "escaped names still balance" 1 n
      | Error e -> Alcotest.fail ("escaping broke the document: " ^ e))

(* ---------- JSON parser ---------- *)

let test_json_parser_roundtrip () =
  let ok s =
    match Obs.Json.parse s with Ok v -> v | Error e -> Alcotest.failf "%s: %s" s e
  in
  (match ok {|{"a":[1,2.5,-3e2],"b":"x\ny","c":true,"d":null}|} with
   | Obs.Json.Obj kvs ->
     (match List.assoc "a" kvs with
      | Obs.Json.Arr [ Obs.Json.Num a; Obs.Json.Num b; Obs.Json.Num c ] ->
        Alcotest.(check (float 1e-9)) "int" 1.0 a;
        Alcotest.(check (float 1e-9)) "float" 2.5 b;
        Alcotest.(check (float 1e-9)) "exponent" (-300.0) c
      | _ -> Alcotest.fail "array shape");
     (match List.assoc "b" kvs with
      | Obs.Json.Str s -> Alcotest.(check string) "escape decoded" "x\ny" s
      | _ -> Alcotest.fail "string");
     Alcotest.(check bool) "bool" true (List.assoc "c" kvs = Obs.Json.Bool true);
     Alcotest.(check bool) "null" true (List.assoc "d" kvs = Obs.Json.Null)
   | _ -> Alcotest.fail "object");
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "must reject %S" s
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "12 34"; "\"unterminated"; "" ]

let test_validator_rejects_imbalance () =
  let bad =
    {|{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1},{"name":"b","ph":"E","ts":1,"pid":1,"tid":1}]}|}
  in
  (match Obs.validate_trace bad with
   | Ok _ -> Alcotest.fail "mismatched E name must be rejected"
   | Error _ -> ());
  let unclosed =
    {|{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1}]}|}
  in
  match Obs.validate_trace unclosed with
  | Ok _ -> Alcotest.fail "unclosed span must be rejected"
  | Error _ -> ()

let test_write_files () =
  with_obs (fun () ->
      Obs.span "s" (fun () -> Obs.count "c");
      let tf = Filename.temp_file "fbp_trace" ".json" in
      let mf = Filename.temp_file "fbp_metrics" ".json" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove tf;
          Sys.remove mf)
        (fun () ->
          Obs.write_trace tf;
          Obs.write_metrics mf;
          (match Obs.validate_trace_file tf with
           | Ok n -> Alcotest.(check int) "file trace balances" 1 n
           | Error e -> Alcotest.fail e);
          let ic = open_in mf in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          match Obs.Json.parse s with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("metrics file must parse: " ^ e)))

let suite =
  [
    Alcotest.test_case "disabled is no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "disabled args not evaluated" `Quick
      test_disabled_args_not_evaluated;
    Alcotest.test_case "counters and histograms" `Quick test_counters_and_histograms;
    Alcotest.test_case "span balance on exception" `Quick test_span_balance_on_exception;
    Alcotest.test_case "nested spans balance" `Quick test_nested_spans_balance;
    Alcotest.test_case "parallel spans balance" `Quick
      test_parallel_spans_balance_per_domain;
    Alcotest.test_case "metrics json shape" `Quick test_metrics_json_shape;
    Alcotest.test_case "trace json escaping" `Quick test_trace_json_escaping;
    Alcotest.test_case "json parser roundtrip" `Quick test_json_parser_roundtrip;
    Alcotest.test_case "validator rejects imbalance" `Quick
      test_validator_rejects_imbalance;
    Alcotest.test_case "write files" `Quick test_write_files;
  ]
