(* Aggregates every suite; `dune runtest` executes them all. *)
let () =
  Alcotest.run "fbp"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("recorder", Test_recorder.suite);
      ("profiler", Test_profiler.suite);
      ("geometry", Test_geometry.suite);
      ("flow", Test_flow.suite);
      ("netlist", Test_netlist.suite);
      ("linalg", Test_linalg.suite);
      ("movebound", Test_movebound.suite);
      ("core", Test_core.suite);
      ("legalize", Test_legalize.suite);
      ("repartition", Test_repartition.suite);
      ("baselines", Test_baselines.suite);
      ("workloads", Test_workloads.suite);
      ("resilience", Test_resilience.suite);
      ("parallel-determinism", Test_parallel_determinism.suite);
      ("sanitize", Test_sanitize.suite);
      ("fuzz", Test_fuzz.suite);
      ("lint", Test_lint.suite);
      ("viz", Test_viz.suite);
    ]
