(* Tests for the domain-level runtime profiler: the unavailable fallback,
   trace well-formedness with gc.* tracks at 1 and 8 domains, placement
   bit-identity with the profiler on vs off, snapshot monotonicity, the
   summary JSON round-trip, pool-hook lifecycle, and the PR7 anti-scaling
   signature (parked surplus workers accruing stop-the-world time with no
   useful work).  The profiler is process-global, so every test stops it
   in a [finally]. *)

module Prof = Fbp_obs.Profiler
module Obs = Fbp_obs.Obs
module Pool = Fbp_util.Pool

let with_prof ?force_unavailable f =
  Fun.protect
    ~finally:(fun () ->
      ignore (Prof.stop ());
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      Prof.start ?force_unavailable ();
      f ())

let small_instance ?(n_cells = 300) ?(seed = 5) () =
  let d = Fbp_netlist.Generator.quick ~seed ~name:"prof" n_cells in
  Fbp_movebound.Instance.unconstrained d

let place ?(domains = 1) inst =
  let config = { Fbp_core.Config.default with domains; hw_clamp = false } in
  match Fbp_core.Placer.place ~config inst with
  | Ok rep -> rep
  | Error e ->
    Alcotest.fail ("placement failed: " ^ Fbp_resilience.Fbp_error.to_string e)

(* Drive enough minor collections that at least one stop-the-world
   rendezvous lands inside the observation window, polling as we go so a
   small ring cannot overflow the interesting events away. *)
let churn_gc () =
  let sink = ref [] in
  for i = 1 to 64 do
    sink := List.init 256 (fun j -> (i * j, string_of_int j)) :: [];
    Gc.minor ();
    if i mod 8 = 0 then Prof.poll ()
  done;
  ignore (Sys.opaque_identity !sink)

(* ---------- lifecycle ---------- *)

let test_stop_when_not_running () =
  let s = Prof.stop () in
  Alcotest.(check bool) "not running" false (Prof.running ());
  Alcotest.(check int) "empty summary" 0 s.Prof.s_events;
  Alcotest.(check (float 0.0)) "no wall" 0.0 s.Prof.s_wall_us

let test_unavailable_fallback () =
  with_prof ~force_unavailable:true (fun () ->
      Alcotest.(check bool) "running" true (Prof.running ());
      let rep = place ~domains:2 (small_instance ()) in
      ignore rep;
      churn_gc ();
      let s = Prof.stop () in
      Alcotest.(check bool) "degraded, not failed" false s.Prof.s_available;
      Alcotest.(check int) "no runtime events" 0 s.Prof.s_events;
      Alcotest.(check bool) "pool occupancy still observed" true
        (s.Prof.s_pool_samples > 0);
      Alcotest.(check bool) "window has width" true (s.Prof.s_wall_us > 0.0))

let test_pool_hook_detached_on_stop () =
  with_prof ~force_unavailable:true (fun () ->
      let rep = place ~domains:2 (small_instance ~n_cells:200 ()) in
      ignore rep);
  (* after stop, a fresh hook install must see a clean slot: stop detached
     the profiler's hook, so ours receives events *)
  let n = Atomic.make 0 in
  Pool.set_profile_hook (fun _ev -> Atomic.incr n);
  Fun.protect ~finally:Pool.clear_profile_hook (fun () ->
      Pool.run_chunks ~domains:2 ~n_chunks:4 (fun _c -> ()));
  Alcotest.(check bool) "replacement hook observed the pool" true
    (Atomic.get n > 0)

(* ---------- trace export ---------- *)

let trace_at_domains domains =
  Obs.reset ();
  Obs.enable ();
  with_prof (fun () ->
      let rep = place ~domains (small_instance ~n_cells:250 ~seed:7 ()) in
      ignore rep;
      churn_gc ();
      let s = Prof.stop () in
      let trace = Obs.trace_json () in
      (match Obs.validate_trace trace with
      | Ok n ->
        Alcotest.(check bool)
          (Printf.sprintf "trace has events at %d domains" domains)
          true (n > 0)
      | Error e ->
        Alcotest.fail
          (Printf.sprintf "trace invalid at %d domains: %s" domains e));
      (s, trace))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1))
  in
  go 0

let test_trace_one_domain () =
  let s, trace = trace_at_domains 1 in
  if s.Prof.s_available && s.Prof.s_stw_count > 0 then
    Alcotest.(check bool) "gc track injected" true (contains trace "gc.")

let test_trace_eight_domains () =
  let s, trace = trace_at_domains 8 in
  if s.Prof.s_available then begin
    Alcotest.(check bool) "stw observed with surplus domains" true
      (s.Prof.s_stw_count > 0);
    Alcotest.(check bool) "gc track injected" true (contains trace "gc.")
  end

(* ---------- observer property ---------- *)

let test_bit_identical_on_off () =
  let run () = place ~domains:2 (small_instance ~n_cells:350 ~seed:11 ()) in
  let base = run () in
  let profiled = with_prof (fun () -> run ()) in
  let px (r : Fbp_core.Placer.report) = r.Fbp_core.Placer.placement in
  let a = px base and b = px profiled in
  let bits arr = Array.map Int64.bits_of_float arr in
  Alcotest.(check bool) "x coordinates bit-identical" true
    (bits a.Fbp_netlist.Placement.x = bits b.Fbp_netlist.Placement.x);
  Alcotest.(check bool) "y coordinates bit-identical" true
    (bits a.Fbp_netlist.Placement.y = bits b.Fbp_netlist.Placement.y)

(* ---------- snapshots ---------- *)

let test_snapshot_monotone () =
  with_prof (fun () ->
      churn_gc ();
      let s1 = Prof.snapshot () in
      churn_gc ();
      let s2 = Prof.snapshot () in
      Alcotest.(check bool) "events monotone" true
        (s2.Prof.s_events >= s1.Prof.s_events);
      Alcotest.(check bool) "wall monotone" true
        (s2.Prof.s_wall_us >= s1.Prof.s_wall_us);
      Alcotest.(check bool) "stw count monotone" true
        (s2.Prof.s_stw_count >= s1.Prof.s_stw_count);
      Alcotest.(check bool) "minor time monotone" true
        (s2.Prof.s_minor_us >= s1.Prof.s_minor_us);
      let final = Prof.stop () in
      Alcotest.(check bool) "stop caps the window" true
        (final.Prof.s_wall_us >= s2.Prof.s_wall_us))

let test_occupancy_sums_to_wall () =
  with_prof (fun () ->
      let rep = place ~domains:4 (small_instance ~n_cells:300 ~seed:13 ()) in
      ignore rep;
      let s = Prof.stop () in
      List.iter
        (fun (d : Prof.domain_summary) ->
          if d.Prof.d_wid >= 0 then begin
            let sum =
              d.Prof.d_busy_us +. d.Prof.d_spin_us +. d.Prof.d_park_us
              +. d.Prof.d_stw_us
            in
            let slack = 0.05 *. d.Prof.d_wall_us in
            Alcotest.(check bool)
              (Printf.sprintf "worker %d occupancy sums to wall" d.Prof.d_wid)
              true
              (Float.abs (sum -. d.Prof.d_wall_us) <= slack +. 1.0)
          end)
        s.Prof.s_domains)

(* ---------- phases ---------- *)

let test_phases_recorded () =
  with_prof (fun () ->
      let rep = place ~domains:1 (small_instance ~n_cells:200 ()) in
      ignore rep;
      let s = Prof.stop () in
      let names = List.map (fun p -> p.Prof.ph_name) s.Prof.s_phases in
      List.iter
        (fun expected ->
          Alcotest.(check bool) ("phase " ^ expected) true
            (List.exists (String.equal expected) names))
        [ "qp"; "flow"; "realization" ];
      List.iter
        (fun (p : Prof.phase_summary) ->
          Alcotest.(check bool) (p.Prof.ph_name ^ " wall positive") true
            (p.Prof.ph_wall_us > 0.0))
        s.Prof.s_phases)

(* ---------- serialization ---------- *)

let test_json_round_trip () =
  let s =
    with_prof (fun () ->
        let rep = place ~domains:2 (small_instance ~n_cells:250 ()) in
        ignore rep;
        churn_gc ();
        Prof.stop ())
  in
  let j = Prof.summary_json s in
  let text = Obs.Json.to_string j in
  match Obs.Json.parse text with
  | Error e -> Alcotest.fail ("summary JSON does not reparse: " ^ e)
  | Ok j' -> (
    match Prof.summary_of_json j' with
    | Error e -> Alcotest.fail ("summary does not decode: " ^ e)
    | Ok s' ->
      Alcotest.(check bool) "available" s.Prof.s_available s'.Prof.s_available;
      Alcotest.(check int) "events" s.Prof.s_events s'.Prof.s_events;
      Alcotest.(check int) "stw count" s.Prof.s_stw_count s'.Prof.s_stw_count;
      Alcotest.(check (float 1e-6)) "wall" s.Prof.s_wall_us s'.Prof.s_wall_us;
      Alcotest.(check int) "domain rows" (List.length s.Prof.s_domains)
        (List.length s'.Prof.s_domains);
      Alcotest.(check int) "phase rows" (List.length s.Prof.s_phases)
        (List.length s'.Prof.s_phases);
      Alcotest.(check int) "pause rows" (List.length s.Prof.s_top_pauses)
        (List.length s'.Prof.s_top_pauses);
      List.iter2
        (fun (a : Prof.domain_summary) (b : Prof.domain_summary) ->
          Alcotest.(check int) "tid" a.Prof.d_tid b.Prof.d_tid;
          Alcotest.(check int) "wid" a.Prof.d_wid b.Prof.d_wid;
          Alcotest.(check (float 1e-6)) "stw us" a.Prof.d_stw_us b.Prof.d_stw_us;
          Alcotest.(check int) "chunks" a.Prof.d_chunks b.Prof.d_chunks)
        s.Prof.s_domains s'.Prof.s_domains;
      let r = Prof.render s' in
      Alcotest.(check bool) "render has per-domain table" true
        (contains r "stw" && contains r "main"))

(* ---------- the PR7 signature ---------- *)

let test_pr7_signature_visible () =
  (* Surplus workers on a saturated machine: spin the pool up with a
     trivial batch, then allocate on the main domain only.  Parked workers
     contribute nothing, yet every minor-GC stop-the-world rendezvous must
     drag them in — the profiler alone has to make that visible. *)
  with_prof (fun () ->
      Pool.run_chunks ~domains:4 ~n_chunks:4 (fun _c -> ());
      churn_gc ();
      churn_gc ();
      let s = Prof.stop () in
      if s.Prof.s_available then begin
        Alcotest.(check bool) "stop-the-world observed" true
          (s.Prof.s_stw_count > 0);
        let idle_victims =
          List.filter
            (fun (d : Prof.domain_summary) ->
              d.Prof.d_wid >= 0 && d.Prof.d_stw_us > 0.0
              && d.Prof.d_stw_us > d.Prof.d_busy_us)
            s.Prof.s_domains
        in
        Alcotest.(check bool)
          "an idle worker pays stop-the-world tax (PR7 signature)" true
          (idle_victims <> [])
      end)

let suite =
  [
    Alcotest.test_case "stop when not running" `Quick test_stop_when_not_running;
    Alcotest.test_case "unavailable fallback" `Quick test_unavailable_fallback;
    Alcotest.test_case "pool hook detached on stop" `Quick
      test_pool_hook_detached_on_stop;
    Alcotest.test_case "trace valid at 1 domain" `Quick test_trace_one_domain;
    Alcotest.test_case "trace valid at 8 domains" `Quick
      test_trace_eight_domains;
    Alcotest.test_case "bit-identical on/off" `Quick test_bit_identical_on_off;
    Alcotest.test_case "snapshot monotone" `Quick test_snapshot_monotone;
    Alcotest.test_case "occupancy sums to wall" `Quick
      test_occupancy_sums_to_wall;
    Alcotest.test_case "phases recorded" `Quick test_phases_recorded;
    Alcotest.test_case "summary JSON round trip" `Quick test_json_round_trip;
    Alcotest.test_case "PR7 signature visible" `Quick test_pr7_signature_visible;
  ]
