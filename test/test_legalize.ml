(* Tests for fbp_legalize: row segment construction, the interval packer,
   end-to-end legality with and without movebounds, and displacement
   sanity. *)

open Fbp_geometry
open Fbp_netlist
open Fbp_legalize

let check_float = Alcotest.(check (float 1e-6))

let chip = Rect.make ~x0:0.0 ~y0:0.0 ~x1:10.0 ~y1:6.0

let test_rows_basic () =
  let area = Rect_set.of_rect chip in
  let segs = Rows.build ~chip ~row_height:1.0 ~blockages:[] area in
  Alcotest.(check int) "six rows" 6 (List.length segs);
  check_float "total width" 60.0 (Rows.total_width segs)

let test_rows_blockage_splits () =
  let area = Rect_set.of_rect chip in
  let block = Rect.make ~x0:4.0 ~y0:0.0 ~x1:6.0 ~y1:2.0 in
  let segs = Rows.build ~chip ~row_height:1.0 ~blockages:[ block ] area in
  (* rows 0 and 1 split into two segments each: 6 + 2 = 8 segments *)
  Alcotest.(check int) "segments" 8 (List.length segs);
  check_float "width loses blockage" 56.0 (Rows.total_width segs)

let test_rows_partial_height_dropped () =
  (* a region covering only half a row contributes no segment there *)
  let area = Rect_set.of_rect (Rect.make ~x0:0.0 ~y0:0.5 ~x1:10.0 ~y1:2.0) in
  let segs = Rows.build ~chip ~row_height:1.0 ~blockages:[] area in
  Alcotest.(check int) "only the full row survives" 1 (List.length segs);
  (match segs with
   | [ s ] -> check_float "row 1 center" 1.5 s.Rows.y
   | _ -> Alcotest.fail "expected one segment")

(* small helper design: n unit cells piled at one point *)
let pile_design n =
  let netlist =
    {
      Netlist.n_cells = n;
      names = Array.init n (Printf.sprintf "c%d");
      widths = Array.make n 1.0;
      heights = Array.make n 1.0;
      fixed = Array.make n false;
      movebound = Array.make n (-1);
      nets = [||];
    }
  in
  let initial = Placement.create n in
  for c = 0 to n - 1 do
    Placement.set initial c (Point.make 5.0 3.0)
  done;
  {
    Design.name = "pile";
    chip;
    row_height = 1.0;
    netlist;
    blockages = [];
    initial;
    target_density = 1.0;
  }

let legalize_design d =
  let inst = Fbp_movebound.Instance.unconstrained d in
  let regions =
    Fbp_movebound.Regions.decompose ~chip:d.Design.chip inst.Fbp_movebound.Instance.movebounds
  in
  let pos = Placement.copy d.Design.initial in
  let st =
    Legalizer.run inst regions pos
      ~piece_of_cell:(Array.make (Netlist.n_cells d.Design.netlist) (-1))
      ~grid:None
  in
  (inst, pos, st)

let test_legalize_pile () =
  let d = pile_design 20 in
  let _, pos, st = legalize_design d in
  Alcotest.(check int) "all legalized" 20 st.Legalizer.n_legalized;
  Alcotest.(check int) "none failed" 0 st.Legalizer.n_failed;
  let audit = Check.audit d pos in
  Alcotest.(check bool) "legal" true audit.Check.legal

let test_legalize_full_chip () =
  (* 60 unit cells into 60 slots: tight packing must still succeed *)
  let d = pile_design 60 in
  let _, pos, st = legalize_design d in
  Alcotest.(check int) "none failed" 0 st.Legalizer.n_failed;
  let audit = Check.audit d pos in
  Alcotest.(check bool) "legal at 100% density" true audit.Check.legal

let test_legalize_overfull_reports () =
  let d = pile_design 61 in
  let _, _, st = legalize_design d in
  Alcotest.(check int) "one cell cannot fit" 1 st.Legalizer.n_failed

let test_legalize_generated_design_with_movebounds () =
  let d = Generator.quick ~seed:31 ~name:"lg" 1500 in
  let c = d.Design.chip in
  let w = Rect.width c and h = Rect.height c in
  let island =
    Rect.make ~x0:(0.1 *. w) ~y0:(0.1 *. h) ~x1:(0.45 *. w) ~y1:(0.5 *. h)
  in
  let nl = d.Design.netlist in
  let rng = Fbp_util.Rng.create 2 in
  for i = 0 to Netlist.n_cells nl - 1 do
    if Fbp_util.Rng.float rng < 0.15 then nl.Netlist.movebound.(i) <- 0
  done;
  let inst =
    { Fbp_movebound.Instance.design = d;
      movebounds =
        [| Fbp_movebound.Movebound.make ~id:0 ~name:"isl"
             ~kind:Fbp_movebound.Movebound.Inclusive [ island ] |] }
  in
  match Fbp_core.Placer.place inst with
  | Error e -> Alcotest.fail (Fbp_resilience.Fbp_error.to_string e)
  | Ok rep ->
    let pos = rep.Fbp_core.Placer.placement in
    let st =
      Legalizer.run inst rep.Fbp_core.Placer.regions pos
        ~piece_of_cell:rep.Fbp_core.Placer.piece_of_cell
        ~grid:rep.Fbp_core.Placer.final_grid
    in
    Alcotest.(check int) "no failures" 0 st.Legalizer.n_failed;
    let audit = Check.audit d pos in
    Alcotest.(check bool)
      (Printf.sprintf "legal (ov=%d offrow=%d out=%d blk=%d)" audit.Check.n_overlaps
         audit.Check.n_off_row audit.Check.n_outside_chip audit.Check.n_on_blockage)
      true audit.Check.legal;
    let mb = Fbp_movebound.Legality.check inst pos in
    Alcotest.(check int) "movebound clean" 0 mb.Fbp_movebound.Legality.n_violations

let test_legalize_displacement_reasonable () =
  (* legalizing an already near-legal placement must barely move cells *)
  let n = 30 in
  let netlist =
    {
      Netlist.n_cells = n;
      names = Array.init n (Printf.sprintf "c%d");
      widths = Array.make n 1.0;
      heights = Array.make n 1.0;
      fixed = Array.make n false;
      movebound = Array.make n (-1);
      nets = [||];
    }
  in
  let initial = Placement.create n in
  (* already on a legal grid, slightly jittered *)
  for c = 0 to n - 1 do
    let col = c mod 10 and row = c / 10 in
    Placement.set initial c
      (Point.make (float_of_int col +. 0.52) (float_of_int row +. 0.48))
  done;
  let d =
    { Design.name = "grid"; chip; row_height = 1.0; netlist; blockages = [];
      initial; target_density = 1.0 }
  in
  let _, pos, st = legalize_design d in
  Alcotest.(check int) "all placed" 0 st.Legalizer.n_failed;
  Alcotest.(check bool)
    (Printf.sprintf "avg displacement %.3f small" st.Legalizer.avg_displacement)
    true
    (st.Legalizer.avg_displacement < 0.2);
  let audit = Check.audit d pos in
  Alcotest.(check bool) "legal" true audit.Check.legal

(* ---------- Flow-based legalizer (Brenner-Vygen style) ---------- *)

let test_flow_legalizer_pile () =
  let d = pile_design 40 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  let regions =
    Fbp_movebound.Regions.decompose ~chip:d.Design.chip inst.Fbp_movebound.Instance.movebounds
  in
  let pos = Placement.copy d.Design.initial in
  let st = Flow_legalizer.run inst regions pos in
  Alcotest.(check int) "all legalized" 40 st.Flow_legalizer.n_legalized;
  Alcotest.(check int) "none failed" 0 st.Flow_legalizer.n_failed;
  let audit = Check.audit d pos in
  Alcotest.(check bool)
    (Printf.sprintf "legal (ov=%d offrow=%d)" audit.Check.n_overlaps audit.Check.n_off_row)
    true audit.Check.legal

let test_flow_legalizer_on_generated () =
  let d = Generator.quick ~seed:91 ~name:"fl" 500 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  match Fbp_core.Placer.place inst with
  | Error e -> Alcotest.fail (Fbp_resilience.Fbp_error.to_string e)
  | Ok rep ->
    let pos_tetris = Placement.copy rep.Fbp_core.Placer.placement in
    let pos_flow = Placement.copy rep.Fbp_core.Placer.placement in
    let st_t =
      Legalizer.run inst rep.Fbp_core.Placer.regions pos_tetris
        ~piece_of_cell:rep.Fbp_core.Placer.piece_of_cell
        ~grid:rep.Fbp_core.Placer.final_grid
    in
    let st_f = Flow_legalizer.run inst rep.Fbp_core.Placer.regions pos_flow in
    Alcotest.(check int) "tetris clean" 0 st_t.Legalizer.n_failed;
    Alcotest.(check int) "flow clean" 0 st_f.Flow_legalizer.n_failed;
    let audit_f = Check.audit d pos_flow in
    Alcotest.(check bool)
      (Printf.sprintf "flow-legalized placement legal (ov=%d offrow=%d out=%d)"
         audit_f.Check.n_overlaps audit_f.Check.n_off_row audit_f.Check.n_outside_chip)
      true audit_f.Check.legal;
    (* both displacement figures should be sane (below a handful of rows) *)
    Alcotest.(check bool)
      (Printf.sprintf "flow displacement %.2f sane" st_f.Flow_legalizer.avg_displacement)
      true
      (st_f.Flow_legalizer.avg_displacement < 10.0)

let test_check_detects_overlap () =
  let d = pile_design 2 in
  let pos = Placement.copy d.Design.initial in
  (* both cells at the same legal spot: row-aligned but overlapping *)
  Placement.set pos 0 (Point.make 2.5 1.5);
  Placement.set pos 1 (Point.make 2.8 1.5);
  let audit = Check.audit d pos in
  Alcotest.(check bool) "overlap found" true (audit.Check.n_overlaps > 0);
  Alcotest.(check bool) "not legal" false audit.Check.legal

let suite =
  [
    Alcotest.test_case "rows basic" `Quick test_rows_basic;
    Alcotest.test_case "rows blockage splits" `Quick test_rows_blockage_splits;
    Alcotest.test_case "rows partial height dropped" `Quick test_rows_partial_height_dropped;
    Alcotest.test_case "legalize pile" `Quick test_legalize_pile;
    Alcotest.test_case "legalize 100% density" `Quick test_legalize_full_chip;
    Alcotest.test_case "legalize overfull reports" `Quick test_legalize_overfull_reports;
    Alcotest.test_case "legalize generated + movebounds" `Slow
      test_legalize_generated_design_with_movebounds;
    Alcotest.test_case "legalize small displacement" `Quick test_legalize_displacement_reasonable;
    Alcotest.test_case "flow legalizer pile" `Quick test_flow_legalizer_pile;
    Alcotest.test_case "flow legalizer on generated" `Slow test_flow_legalizer_on_generated;
    Alcotest.test_case "check detects overlap" `Quick test_check_detects_overlap;
  ]
