(* Tests for fbp_core: density/capacity model, window grids, QP optimality,
   the FBP flow model invariants (Theorem 3 behaviour, conservation, size
   linearity), realization invariants, and the full placer. *)

open Fbp_geometry
open Fbp_netlist
open Fbp_core

let check_float = Alcotest.(check (float 1e-6))

(* ---------- Density ---------- *)

let test_density_capacity () =
  let density =
    Density.of_parts
      ~blockages:[ Rect.make ~x0:0.0 ~y0:0.0 ~x1:2.0 ~y1:2.0 ]
      ~density:0.5
  in
  let r = Rect.make ~x0:0.0 ~y0:0.0 ~x1:4.0 ~y1:4.0 in
  (* (16 - 4) * 0.5 *)
  check_float "capacity with blockage" 6.0 (Density.capacity_rect density r);
  let all_blocked = Rect.make ~x0:0.0 ~y0:0.0 ~x1:2.0 ~y1:2.0 in
  check_float "fully blocked" 0.0 (Density.capacity_rect density all_blocked)

let test_density_bins () =
  let d = Generator.quick ~seed:8 300 in
  let usage, cap = Density.bin_utilization d d.Design.initial ~nx:4 ~ny:4 in
  let total_usage = Array.fold_left ( +. ) 0.0 usage in
  Alcotest.(check (float 1.0)) "usage sums to movable area"
    (Netlist.total_movable_area d.Design.netlist) total_usage;
  Alcotest.(check bool) "caps positive somewhere" true (Array.exists (fun c -> c > 0.0) cap)

(* ---------- Grid ---------- *)

let fixture_regions () =
  Fbp_movebound.Regions.decompose
    ~chip:(Rect.make ~x0:0.0 ~y0:0.0 ~x1:8.0 ~y1:8.0)
    [| Fbp_movebound.Movebound.make ~id:0 ~name:"m" ~kind:Fbp_movebound.Movebound.Inclusive
         [ Rect.make ~x0:1.0 ~y0:1.0 ~x1:5.0 ~y1:5.0 ] |]

let test_grid_windows_tile () =
  let regions = fixture_regions () in
  let density = Density.of_parts ~blockages:[] ~density:1.0 in
  let chip = Rect.make ~x0:0.0 ~y0:0.0 ~x1:8.0 ~y1:8.0 in
  let g = Grid.create ~chip ~nx:4 ~ny:2 ~regions ~density () in
  Alcotest.(check int) "n windows" 8 (Grid.n_windows g);
  let total = Array.fold_left (fun acc (w : Grid.window) -> acc +. Rect.area w.Grid.rect) 0.0 g.Grid.windows in
  check_float "windows tile chip" 64.0 total;
  (* pieces tile the chip too, and capacities sum to chip capacity *)
  let ptotal =
    Array.fold_left (fun acc (p : Grid.piece) -> acc +. Rect_set.area p.Grid.area) 0.0 g.Grid.pieces
  in
  check_float "pieces tile chip" 64.0 ptotal;
  let ctotal = Array.fold_left (fun acc (p : Grid.piece) -> acc +. p.Grid.capacity) 0.0 g.Grid.pieces in
  check_float "capacities = chip capacity" 64.0 ctotal

let test_grid_lookup () =
  let regions = fixture_regions () in
  let density = Density.of_parts ~blockages:[] ~density:1.0 in
  let chip = Rect.make ~x0:0.0 ~y0:0.0 ~x1:8.0 ~y1:8.0 in
  let g = Grid.create ~chip ~nx:4 ~ny:4 ~regions ~density () in
  Alcotest.(check int) "window at origin" 0 (Grid.window_at g (Point.make 0.1 0.1));
  Alcotest.(check int) "window at far corner" 15 (Grid.window_at g (Point.make 7.9 7.9));
  Alcotest.(check int) "clamped outside" 0 (Grid.window_at g (Point.make (-3.0) (-3.0)));
  (* boundary points sit on the window frame *)
  let bp = Grid.boundary_point g 0 1 in
  check_float "east boundary x" 2.0 bp.Point.x;
  Alcotest.(check int) "opposite of N is S" 2 (Grid.opposite_dir 0);
  Alcotest.(check int) "4 neighbors in the middle" 4 (List.length (Grid.neighbors g 5));
  Alcotest.(check int) "2 neighbors in the corner" 2 (List.length (Grid.neighbors g 0))

(* ---------- QP ---------- *)

(* two movable cells on a line between two pads: optimum is equidistant *)
let test_qp_spring_chain () =
  let nets =
    [|
      { Netlist.weight = 1.0;
        pins = [| { Netlist.cell = -1; dx = 0.0; dy = 0.0 };
                  { Netlist.cell = 0; dx = 0.0; dy = 0.0 } |] };
      { Netlist.weight = 1.0;
        pins = [| { Netlist.cell = 0; dx = 0.0; dy = 0.0 };
                  { Netlist.cell = 1; dx = 0.0; dy = 0.0 } |] };
      { Netlist.weight = 1.0;
        pins = [| { Netlist.cell = 1; dx = 0.0; dy = 0.0 };
                  { Netlist.cell = -1; dx = 9.0; dy = 0.0 } |] };
    |]
  in
  let nl =
    {
      Netlist.n_cells = 2;
      names = [| "a"; "b" |];
      widths = [| 1.0; 1.0 |];
      heights = [| 1.0; 1.0 |];
      fixed = [| false; false |];
      movebound = [| -1; -1 |];
      nets;
    }
  in
  let pos = Placement.create 2 in
  let st = Qp.solve_global Config.default nl pos ~anchor:(fun _ -> None) () in
  Alcotest.(check bool) "solved" true (st.Qp.residual < 1e-4);
  Alcotest.(check (float 1e-3)) "x0 at 3" 3.0 pos.Placement.x.(0);
  Alcotest.(check (float 1e-3)) "x1 at 6" 6.0 pos.Placement.x.(1)

let test_qp_anchor_pulls () =
  let nl =
    {
      Netlist.n_cells = 1;
      names = [| "a" |];
      widths = [| 1.0 |];
      heights = [| 1.0 |];
      fixed = [| false |];
      movebound = [| -1 |];
      nets = [||];
    }
  in
  let pos = Placement.create 1 in
  ignore
    (Qp.solve_global Config.default nl pos
       ~anchor:(fun _ -> Some (1.0, 4.0, 1.0, -2.0)) ());
  Alcotest.(check (float 1e-4)) "anchored x" 4.0 pos.Placement.x.(0);
  Alcotest.(check (float 1e-4)) "anchored y" (-2.0) pos.Placement.y.(0)

let test_qp_star_matches_small_clique_roughly () =
  (* a 6-pin net between a fixed pad and 5 movable cells: star model must
     pull all cells toward the pad symmetrically *)
  let pins =
    Array.init 6 (fun i ->
        if i = 0 then { Netlist.cell = -1; dx = 10.0; dy = 10.0 }
        else { Netlist.cell = i - 1; dx = 0.0; dy = 0.0 })
  in
  let nl =
    {
      Netlist.n_cells = 5;
      names = Array.init 5 (Printf.sprintf "c%d");
      widths = Array.make 5 1.0;
      heights = Array.make 5 1.0;
      fixed = Array.make 5 false;
      movebound = Array.make 5 (-1);
      nets = [| { Netlist.weight = 1.0; pins } |];
    }
  in
  let pos = Placement.create 5 in
  ignore (Qp.solve_global Config.default nl pos ~anchor:(fun _ -> None) ());
  for c = 0 to 4 do
    Alcotest.(check (float 1e-2)) "pulled to pad x" 10.0 pos.Placement.x.(c);
    Alcotest.(check (float 1e-2)) "pulled to pad y" 10.0 pos.Placement.y.(c)
  done

(* ---------- FBP model ---------- *)

let small_instance ?(n_cells = 400) ?(seed = 3) () =
  let d = Generator.quick ~seed ~name:"t" n_cells in
  Fbp_movebound.Instance.unconstrained d

let build_model ?(nx = 4) inst =
  let design = inst.Fbp_movebound.Instance.design in
  let regions =
    Fbp_movebound.Regions.decompose ~chip:design.Design.chip
      inst.Fbp_movebound.Instance.movebounds
  in
  let density = Density.create design in
  let grid = Grid.create ~chip:design.Design.chip ~nx ~ny:nx ~regions ~density () in
  let model = Fbp_model.build inst regions grid design.Design.initial in
  (regions, grid, model)

let test_fbp_model_size_linear () =
  (* |V| and |E| must not scale with the number of cells (paper Table I) *)
  let _, _, m1 = build_model (small_instance ~n_cells:300 ()) in
  let _, _, m2 = build_model (small_instance ~n_cells:1200 ()) in
  Alcotest.(check bool) "node count cell-independent" true
    (abs (m1.Fbp_model.n_nodes - m2.Fbp_model.n_nodes) * 10 < m1.Fbp_model.n_nodes + 10);
  Alcotest.(check bool) "edges within 2x" true
    (m2.Fbp_model.n_edges < 2 * m1.Fbp_model.n_edges + 32)

let test_fbp_model_feasible_and_conserving () =
  let inst = small_instance () in
  let _, grid, model = build_model inst in
  let sol = Fbp_model.solve model in
  (match sol.Fbp_model.verdict with
   | Fbp_flow.Mcf.Feasible _ -> ()
   | Fbp_flow.Mcf.Infeasible _ -> Alcotest.fail "expected feasible");
  (* prescriptions cover all movable area *)
  let total_allot = Array.fold_left ( +. ) 0.0 sol.Fbp_model.allot in
  let movable = Netlist.total_movable_area inst.Fbp_movebound.Instance.design.Design.netlist in
  Alcotest.(check (float 0.5)) "allotments = movable area" movable total_allot;
  (* no piece over capacity *)
  Array.iter
    (fun (p : Grid.piece) ->
      let assigned = ref 0.0 in
      for m = 0 to model.Fbp_model.n_classes - 1 do
        assigned := !assigned +. Fbp_model.allotment sol ~piece:p.Grid.id ~m
      done;
      if !assigned > p.Grid.capacity +. 1e-4 then
        Alcotest.failf "piece %d over capacity: %.3f > %.3f" p.Grid.id !assigned p.Grid.capacity)
    grid.Grid.pieces

let test_fbp_model_infeasible_detected () =
  (* an inclusive movebound far too small for its cells *)
  let d = Generator.quick ~seed:5 ~name:"t" 300 in
  let nl = d.Design.netlist in
  for c = 0 to 99 do
    nl.Netlist.movebound.(c) <- 0
  done;
  let tiny = Rect.make ~x0:0.0 ~y0:0.0 ~x1:2.0 ~y1:2.0 in
  let inst =
    { Fbp_movebound.Instance.design = d;
      movebounds =
        [| Fbp_movebound.Movebound.make ~id:0 ~name:"tiny"
             ~kind:Fbp_movebound.Movebound.Inclusive [ tiny ] |] }
  in
  let _, _, model = build_model inst in
  let sol = Fbp_model.solve model in
  match sol.Fbp_model.verdict with
  | Fbp_flow.Mcf.Infeasible _ -> ()
  | Fbp_flow.Mcf.Feasible _ -> Alcotest.fail "expected infeasible (Theorem 3)"

let test_fbp_greedy_vs_exact () =
  (* the greedy-seeded flow must stay feasible and near the exact optimum,
     and both must prescribe the same total area *)
  let inst = small_instance ~n_cells:500 ~seed:19 () in
  let _, _, model_g = build_model ~nx:4 inst in
  let sol_g = Fbp_model.solve model_g in
  let _, _, model_e = build_model ~nx:4 inst in
  let sol_e = Fbp_model.solve ~exact:true model_e in
  (match (sol_g.Fbp_model.verdict, sol_e.Fbp_model.verdict) with
   | Fbp_flow.Mcf.Feasible _, Fbp_flow.Mcf.Feasible _ -> ()
   | _ -> Alcotest.fail "both modes must be feasible");
  let total a = Array.fold_left ( +. ) 0.0 a in
  Alcotest.(check (float 0.5)) "same prescribed area"
    (total sol_e.Fbp_model.allot) (total sol_g.Fbp_model.allot);
  (* the exact residual graph carries a min-cost flow *)
  Alcotest.(check bool) "exact mode optimal" true
    (Fbp_flow.Mcf.check_optimal model_e.Fbp_model.graph)

let test_fbp_externals_acyclic () =
  let inst = small_instance ~n_cells:800 ~seed:11 () in
  let _, _, model = build_model ~nx:8 inst in
  let sol = Fbp_model.solve model in
  (* the external flow graph must be a DAG per class *)
  let edges = Hashtbl.create 64 in
  List.iter
    (fun (e : Fbp_model.external_flow) ->
      Hashtbl.replace edges (e.Fbp_model.xm, e.Fbp_model.from_w)
        (e.Fbp_model.to_w
        :: (try Hashtbl.find edges (e.Fbp_model.xm, e.Fbp_model.from_w) with Not_found -> [])))
    sol.Fbp_model.externals;
  let state = Hashtbl.create 64 in
  let rec visit m w =
    match Hashtbl.find_opt state (m, w) with
    | Some `Doing -> Alcotest.fail "cycle among flow-carrying external arcs"
    | Some `Done -> ()
    | None ->
      Hashtbl.replace state (m, w) `Doing;
      List.iter (visit m) (try Hashtbl.find edges (m, w) with Not_found -> []);
      Hashtbl.replace state (m, w) `Done
  in
  Hashtbl.iter (fun (m, w) _ -> visit m w) edges

(* ---------- Realization + placer ---------- *)

let test_realization_assigns_everything () =
  let inst = small_instance ~n_cells:600 ~seed:13 () in
  let design = inst.Fbp_movebound.Instance.design in
  let regions, grid, model = build_model ~nx:4 inst in
  let sol = Fbp_model.solve model in
  let pos = Placement.copy design.Design.initial in
  let cell_nets = Netlist.cell_nets design.Design.netlist in
  let r = Realization.realize Config.default inst regions sol pos ~cell_nets in
  let nl = design.Design.netlist in
  for c = 0 to Netlist.n_cells nl - 1 do
    if not nl.Netlist.fixed.(c) then begin
      let pid = r.Realization.piece_of_cell.(c) in
      if pid < 0 then Alcotest.failf "cell %d unassigned" c;
      (* position is inside the assigned piece *)
      let piece = grid.Grid.pieces.(pid) in
      if not (Rect_set.contains_point piece.Grid.area (Placement.get pos c)) then
        Alcotest.failf "cell %d outside its piece" c
    end
  done;
  (* per-piece load close to capacity (one-cell slack) *)
  let load = Array.make (Grid.n_pieces grid) 0.0 in
  for c = 0 to Netlist.n_cells nl - 1 do
    let pid = r.Realization.piece_of_cell.(c) in
    if pid >= 0 then load.(pid) <- load.(pid) +. Netlist.size nl c
  done;
  let max_cell = Array.fold_left Float.max 0.0 nl.Netlist.widths in
  Array.iter
    (fun (p : Grid.piece) ->
      if load.(p.Grid.id) > p.Grid.capacity +. (3.0 *. max_cell) then
        Alcotest.failf "piece %d badly overfull: %.2f vs %.2f" p.Grid.id load.(p.Grid.id)
          p.Grid.capacity)
    grid.Grid.pieces

let test_realization_follows_flow_prescriptions () =
  (* Eq. (2) semantics: the realized per-piece load must track the flow's
     allotments within the integral-rounding slack (a few cells), and the
     number of shipped cells must be consistent with the external flow. *)
  let inst = small_instance ~n_cells:800 ~seed:23 () in
  let design = inst.Fbp_movebound.Instance.design in
  let regions, grid, model = build_model ~nx:4 inst in
  let sol = Fbp_model.solve model in
  let pos = Placement.copy design.Design.initial in
  let cell_nets = Netlist.cell_nets design.Design.netlist in
  let r = Realization.realize Config.default inst regions sol pos ~cell_nets in
  let nl = design.Design.netlist in
  let max_cell = Array.fold_left Float.max 0.0 nl.Netlist.widths in
  (* per-piece load vs allotment *)
  let load = Array.make (Grid.n_pieces grid) 0.0 in
  for c = 0 to Netlist.n_cells nl - 1 do
    let pid = r.Realization.piece_of_cell.(c) in
    if pid >= 0 then load.(pid) <- load.(pid) +. Netlist.size nl c
  done;
  Array.iter
    (fun (p : Grid.piece) ->
      let a = ref 0.0 in
      for m = 0 to model.Fbp_model.n_classes - 1 do
        a := !a +. Fbp_model.allotment sol ~piece:p.Grid.id ~m
      done;
      if Float.abs (load.(p.Grid.id) -. !a) > 4.0 *. max_cell then
        Alcotest.failf "piece %d: load %.1f far from allotment %.1f" p.Grid.id
          load.(p.Grid.id) !a)
    grid.Grid.pieces;
  (* total external flow bounds the shipped area *)
  let ext_total =
    List.fold_left (fun acc (e : Fbp_model.external_flow) -> acc +. e.Fbp_model.amount)
      0.0 sol.Fbp_model.externals
  in
  if ext_total < 1e-9 then
    Alcotest.(check int) "no externals, nothing shipped" 0
      r.Realization.stats.Realization.n_shipped_cells

(* Post-realization invariants: every movable cell landed in a piece, its
   position is inside that piece's area, and (when requested) the piece's
   region admits the cell's movebound class. *)
let check_realization_invariants ?(check_admissible = true)
    (inst : Fbp_movebound.Instance.t) (regions : Fbp_movebound.Regions.t)
    (grid : Grid.t) ~(piece_of_cell : int array) (pos : Placement.t) =
  let nl = inst.Fbp_movebound.Instance.design.Design.netlist in
  for c = 0 to Netlist.n_cells nl - 1 do
    if not nl.Netlist.fixed.(c) then begin
      let pid = piece_of_cell.(c) in
      if pid < 0 then Alcotest.failf "cell %d has no piece (dropped)" c;
      let piece = grid.Grid.pieces.(pid) in
      if not (Rect_set.contains_point piece.Grid.area (Placement.get pos c)) then
        Alcotest.failf "cell %d outside its assigned piece %d" c pid;
      if check_admissible then begin
        let mb = nl.Netlist.movebound.(c) in
        let reg = regions.Fbp_movebound.Regions.regions.(piece.Grid.region) in
        if not (Fbp_movebound.Regions.admissible reg ~mb) then
          Alcotest.failf "cell %d in a region inadmissible for movebound %d" c mb
      end
    end
  done

(* Regression for the dropped-cell bug: when a residual cycle among the
   external arcs survives into realization, the Kahn deadlock tie-break
   releases the smallest node of the cycle first.  When that node commits,
   its members table entry is consumed; cells the *other* cycle node later
   ships into it land in a buffer no wave ever processes and used to keep
   piece_of_cell = -1.  The crafted solution below forces exactly that:
   externals form the 2-cycle w0 -> w1 -> w0 and window 1's piece
   allotments are zeroed, so every cell of node (1, cls) must ship into the
   already-consumed node (0, cls). *)
let test_realization_flushes_cycle_residue () =
  let inst = small_instance ~n_cells:400 ~seed:7 () in
  let design = inst.Fbp_movebound.Instance.design in
  let regions, grid, model = build_model ~nx:2 inst in
  let sol = Fbp_model.solve model in
  (match sol.Fbp_model.verdict with
   | Fbp_flow.Mcf.Feasible _ -> ()
   | Fbp_flow.Mcf.Infeasible _ -> Alcotest.fail "base model must be feasible");
  let n_classes = model.Fbp_model.n_classes in
  let cls = n_classes - 1 in
  let g1 =
    match
      Array.find_opt
        (fun (g : Fbp_model.group) -> g.Fbp_model.w = 1 && g.Fbp_model.m = cls)
        model.Fbp_model.groups
    with
    | Some g -> g
    | None -> Alcotest.fail "window 1 must hold cells of the test class"
  in
  (* zero window 1's allotments so node (1, cls) only has its transit sink *)
  let allot = Array.copy sol.Fbp_model.allot in
  List.iter
    (fun pid -> allot.((pid * n_classes) + cls) <- 0.0)
    grid.Grid.pieces_of_window.(1);
  let externals =
    [
      { Fbp_model.xm = cls; from_w = 0; to_w = 1; from_dir = 1; amount = 1e-3 };
      { Fbp_model.xm = cls; from_w = 1; to_w = 0; from_dir = 3;
        amount = g1.Fbp_model.total };
    ]
  in
  let sol = { sol with Fbp_model.allot; externals } in
  let pos = Placement.copy design.Design.initial in
  let cell_nets = Netlist.cell_nets design.Design.netlist in
  let r = Realization.realize Config.default inst regions sol pos ~cell_nets in
  (* the flush path must have fired... *)
  Alcotest.(check bool) "cycle residue went through fallback" true
    (r.Realization.stats.Realization.n_fallback_cells > 0);
  (* ...and no cell may be dropped (piece_of_cell = -1 was the bug) *)
  check_realization_invariants inst regions grid
    ~piece_of_cell:r.Realization.piece_of_cell pos

(* The invariants must also hold on the placer's end-to-end result, and stay
   true while the degradation ladder is being exercised by fault schedules
   (the same sites test_resilience uses). *)
let test_realization_invariants_end_to_end () =
  let with_inject f = Fun.protect ~finally:Fbp_resilience.Inject.reset f in
  let check_rep (rep : Placer.report) inst =
    match rep.Placer.final_grid with
    | None -> Alcotest.fail "placer must report its final grid"
    | Some grid ->
      check_realization_invariants ~check_admissible:false inst rep.Placer.regions
        grid ~piece_of_cell:rep.Placer.piece_of_cell rep.Placer.placement
  in
  let inst = small_instance ~n_cells:500 ~seed:29 () in
  (match Placer.place inst with
   | Error e -> Alcotest.fail (Fbp_resilience.Fbp_error.to_string e)
   | Ok rep -> check_rep rep inst);
  (* one transient flow infeasibility: margin drop / relaxation rungs *)
  with_inject (fun () ->
      Fbp_resilience.Inject.arm ~times:1 Fbp_resilience.Inject.Mcf
        (Fbp_resilience.Inject.Infeasible 1.0);
      match Placer.place inst with
      | Error e -> Alcotest.fail (Fbp_resilience.Fbp_error.to_string e)
      | Ok rep -> check_rep rep inst);
  (* CG stagnation: safeguarded restart must not corrupt the assignment *)
  with_inject (fun () ->
      Fbp_resilience.Inject.arm ~times:2 Fbp_resilience.Inject.Cg
        Fbp_resilience.Inject.Stagnate;
      match Placer.place inst with
      | Error e -> Alcotest.fail (Fbp_resilience.Fbp_error.to_string e)
      | Ok rep -> check_rep rep inst)

let test_placer_improves_and_respects_movebounds () =
  let d = Generator.quick ~seed:21 ~name:"t" 1200 in
  let chip = d.Design.chip in
  let w = Rect.width chip and h = Rect.height chip in
  let island =
    Rect.make ~x0:(0.5 *. w) ~y0:(0.5 *. h) ~x1:(0.95 *. w) ~y1:(0.95 *. h)
  in
  let nl = d.Design.netlist in
  let rng = Fbp_util.Rng.create 4 in
  for c = 0 to Netlist.n_cells nl - 1 do
    if Fbp_util.Rng.float rng < 0.15 then nl.Netlist.movebound.(c) <- 0
  done;
  let inst =
    { Fbp_movebound.Instance.design = d;
      movebounds =
        [| Fbp_movebound.Movebound.make ~id:0 ~name:"isl"
             ~kind:Fbp_movebound.Movebound.Inclusive [ island ] |] }
  in
  match Placer.place inst with
  | Error e -> Alcotest.fail (Fbp_resilience.Fbp_error.to_string e)
  | Ok rep ->
    Alcotest.(check bool) "levels ran" true (List.length rep.Placer.levels >= 2);
    (* every constrained cell's center is inside its movebound *)
    let out = ref 0 in
    for c = 0 to Netlist.n_cells nl - 1 do
      if nl.Netlist.movebound.(c) = 0 then
        if not (Rect.contains_point island (Placement.get rep.Placer.placement c)) then
          incr out
    done;
    Alcotest.(check int) "constrained centers inside island" 0 !out

let test_placer_deterministic_parallel () =
  let inst = small_instance ~n_cells:700 ~seed:17 () in
  let run domains =
    match Placer.place ~config:{ Config.default with domains } inst with
    | Error e -> Alcotest.fail (Fbp_resilience.Fbp_error.to_string e)
    | Ok rep -> rep.Placer.placement
  in
  let p1 = run 1 and p4 = run 4 in
  Alcotest.(check (array (float 0.0))) "x identical" p1.Placement.x p4.Placement.x;
  Alcotest.(check (array (float 0.0))) "y identical" p1.Placement.y p4.Placement.y

let test_placer_reports_infeasible () =
  let d = Generator.quick ~seed:5 ~name:"t" 300 in
  let nl = d.Design.netlist in
  for c = 0 to 149 do
    nl.Netlist.movebound.(c) <- 0
  done;
  let tiny = Rect.make ~x0:0.0 ~y0:0.0 ~x1:2.0 ~y1:1.0 in
  let inst =
    { Fbp_movebound.Instance.design = d;
      movebounds =
        [| Fbp_movebound.Movebound.make ~id:0 ~name:"tiny"
             ~kind:Fbp_movebound.Movebound.Inclusive [ tiny ] |] }
  in
  (* strict mode surfaces the Theorem 3 certificate as a typed error *)
  (match Placer.place ~config:{ Config.default with strict = true } inst with
   | Error (Fbp_resilience.Fbp_error.Infeasible_flow _) -> ()
   | Error e ->
     Alcotest.fail ("expected Infeasible_flow, got " ^ Fbp_resilience.Fbp_error.to_string e)
   | Ok _ -> Alcotest.fail "expected infeasibility report");
  (* graceful mode degrades (movebound relaxation) instead of failing *)
  match Placer.place inst with
  | Error e ->
    Alcotest.fail ("graceful mode should not fail: " ^ Fbp_resilience.Fbp_error.to_string e)
  | Ok rep ->
    Alcotest.(check bool) "degradations recorded" true
      (rep.Placer.degradations <> [])

let suite =
  [
    Alcotest.test_case "density capacity" `Quick test_density_capacity;
    Alcotest.test_case "density bins" `Quick test_density_bins;
    Alcotest.test_case "grid windows tile" `Quick test_grid_windows_tile;
    Alcotest.test_case "grid lookup" `Quick test_grid_lookup;
    Alcotest.test_case "qp spring chain" `Quick test_qp_spring_chain;
    Alcotest.test_case "qp anchor" `Quick test_qp_anchor_pulls;
    Alcotest.test_case "qp star model" `Quick test_qp_star_matches_small_clique_roughly;
    Alcotest.test_case "fbp model size linear in windows" `Quick test_fbp_model_size_linear;
    Alcotest.test_case "fbp model feasible + conserving" `Quick test_fbp_model_feasible_and_conserving;
    Alcotest.test_case "fbp model detects infeasible" `Quick test_fbp_model_infeasible_detected;
    Alcotest.test_case "fbp greedy vs exact flow" `Quick test_fbp_greedy_vs_exact;
    Alcotest.test_case "fbp externals acyclic" `Quick test_fbp_externals_acyclic;
    Alcotest.test_case "realization assigns everything" `Quick test_realization_assigns_everything;
    Alcotest.test_case "realization follows flow prescriptions" `Quick
      test_realization_follows_flow_prescriptions;
    Alcotest.test_case "realization flushes cycle residue" `Quick
      test_realization_flushes_cycle_residue;
    Alcotest.test_case "realization invariants end to end" `Quick
      test_realization_invariants_end_to_end;
    Alcotest.test_case "placer respects movebounds" `Slow test_placer_improves_and_respects_movebounds;
    Alcotest.test_case "placer deterministic across domains" `Slow test_placer_deterministic_parallel;
    Alcotest.test_case "placer reports infeasible" `Quick test_placer_reports_infeasible;
  ]
