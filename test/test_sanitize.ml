(* Tests for the flow-invariant sanitizer mode: the check runner itself,
   each per-stage invariant (MCF flow, transport balance, CSR structure),
   and the end-to-end behavior — a clean sanitized run succeeds while an
   injected flow corruption surfaces as a typed Sanitizer_violation that
   the placer refuses to degrade away.  The enable flag is process-global,
   so every test restores it in a [finally]. *)

open Fbp_flow
module Sanitize = Fbp_resilience.Sanitize
module Inject = Fbp_resilience.Inject
module Err = Fbp_resilience.Fbp_error

let with_sanitize f =
  let was = Sanitize.enabled () in
  Sanitize.set_enabled true;
  Fun.protect ~finally:(fun () -> Sanitize.set_enabled was) f

let with_inject f = Fun.protect ~finally:Inject.reset f

(* ---------- the runner ---------- *)

let test_check_disabled_is_free () =
  Sanitize.set_enabled false;
  let evaluated = ref false in
  Sanitize.check ~site:"t" ~invariant:"i" (fun () ->
      evaluated := true;
      Error "never seen");
  Alcotest.(check bool) "thunk not evaluated when disabled" false !evaluated

let test_check_enabled_raises_typed () =
  with_sanitize (fun () ->
      let before = Sanitize.checks_run () in
      Sanitize.check ~site:"t" ~invariant:"i" (fun () -> Ok ());
      Alcotest.(check int) "check counted" (before + 1) (Sanitize.checks_run ());
      match
        Sanitize.check ~site:"mcf.solve" ~invariant:"conservation" (fun () ->
            Error "node 3 leaks")
      with
      | () -> Alcotest.fail "violation must raise"
      | exception Err.Error (Err.Sanitizer_violation { site; invariant; detail })
        ->
        Alcotest.(check string) "site" "mcf.solve" site;
        Alcotest.(check string) "invariant" "conservation" invariant;
        Alcotest.(check string) "detail" "node 3 leaks" detail)

let test_exit_code_is_8 () =
  Alcotest.(check int) "sanitizer violations exit 8" 8
    (Err.exit_code
       (Err.Sanitizer_violation { site = "s"; invariant = "i"; detail = "d" }))

(* ---------- MCF flow invariants ---------- *)

(* 0 --(cap 3)--> 1 --(cap 3)--> 2, supply 2 at node 0, demand 2 at node 2 *)
let small_flow () =
  let g = Graph.create 3 in
  let a01 = Graph.add_edge g ~u:0 ~v:1 ~cap:3.0 ~cost:1.0 in
  let a12 = Graph.add_edge g ~u:1 ~v:2 ~cap:3.0 ~cost:1.0 in
  let supply = [| 2.0; 0.0; -2.0 |] in
  (g, supply, a01, a12)

let test_check_flow_accepts_solver_output () =
  let g, supply, _, _ = small_flow () in
  (match Mcf.solve g ~supply with
  | Mcf.Feasible _ -> ()
  | Mcf.Infeasible _ -> Alcotest.fail "path instance must be feasible");
  match Mcf.check_flow g ~supply ~exact:true with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("solver output must verify: " ^ msg)

let test_check_flow_catches_conservation_break () =
  let g, supply, a01, _ = small_flow () in
  (match Mcf.solve g ~supply with Mcf.Feasible _ -> () | _ -> assert false);
  (* extra flow into node 1 that never leaves: conservation broken *)
  Graph.push g a01 0.5;
  match Mcf.check_flow g ~supply ~exact:true with
  | Ok () -> Alcotest.fail "tampered flow must not verify"
  | Error _ -> ()

let test_check_flow_catches_capacity_break () =
  let g, supply, a01, a12 = small_flow () in
  (match Mcf.solve g ~supply with Mcf.Feasible _ -> () | _ -> assert false);
  (* conservation-preserving overflow: push 2 more through the whole path,
     total 4 > capacity 3 on both arcs *)
  Graph.push g a01 2.0;
  Graph.push g a12 2.0;
  match Mcf.check_flow g ~supply:[| 4.0; 0.0; -4.0 |] ~exact:true with
  | Ok () -> Alcotest.fail "over-capacity flow must not verify"
  | Error _ -> ()

let test_solve_under_sanitizer_passes () =
  with_sanitize (fun () ->
      let g, supply, _, _ = small_flow () in
      match Mcf.solve g ~supply with
      | Mcf.Feasible _ -> ()
      | Mcf.Infeasible _ -> Alcotest.fail "feasible instance")

let test_injected_corruption_trips_sanitizer () =
  with_sanitize (fun () ->
      with_inject (fun () ->
          Inject.arm Inject.Mcf Inject.Corrupt;
          let g, supply, _, _ = small_flow () in
          match Mcf.solve g ~supply with
          | _ -> Alcotest.fail "corrupted flow must trip the sanitizer"
          | exception Err.Error (Err.Sanitizer_violation { site; _ }) ->
            Alcotest.(check string) "at the mcf site" "mcf.solve" site))

(* ---------- transport balance ---------- *)

let transport_problem () =
  {
    Transport.sizes = [| 1.0; 2.0; 1.5; 0.5 |];
    capacities = [| 3.0; 3.0 |];
    cost = (fun i j -> Float.abs (float_of_int i -. (3.0 *. float_of_int j)));
  }

let test_transport_audit_accepts_solver_output () =
  let p = transport_problem () in
  match Transport.solve p with
  | Error e -> Alcotest.fail e
  | Ok a -> (
    match Transport.audit p a with
    | Ok () -> ()
    | Error msg -> Alcotest.fail ("solver output must verify: " ^ msg))

let test_transport_audit_catches_tampering () =
  let p = transport_problem () in
  match Transport.solve p with
  | Error e -> Alcotest.fail e
  | Ok a ->
    (* column tamper: reported load no longer matches the fractions *)
    a.Transport.load.(0) <- a.Transport.load.(0) +. 1.0;
    (match Transport.audit p a with
    | Ok () -> Alcotest.fail "tampered load must not verify"
    | Error _ -> ());
    (* row tamper: a cell loses mass *)
    (match Transport.solve p with
    | Error e -> Alcotest.fail e
    | Ok a2 ->
      a2.Transport.frac.(0) <- [ (0, 0.25) ];
      (match Transport.audit p a2 with
      | Ok () -> Alcotest.fail "short row must not verify"
      | Error _ -> ()))

let test_transport_solve_under_sanitizer () =
  with_sanitize (fun () ->
      match Transport.solve (transport_problem ()) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)

(* ---------- CSR structure ---------- *)

let test_csr_validate_frozen () =
  let b = Fbp_linalg.Csr.builder 4 in
  (* insertion order deliberately scrambled; duplicates accumulate *)
  Fbp_linalg.Csr.add b ~row:2 ~col:3 1.0;
  Fbp_linalg.Csr.add b ~row:0 ~col:2 5.0;
  Fbp_linalg.Csr.add b ~row:0 ~col:0 1.0;
  Fbp_linalg.Csr.add b ~row:0 ~col:2 (-2.0);
  Fbp_linalg.Csr.add_spring b 1 3 2.0;
  let t = Fbp_linalg.Csr.freeze b in
  (match Fbp_linalg.Csr.validate t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("frozen matrix must validate: " ^ msg));
  Alcotest.(check (float 1e-12)) "duplicates accumulated" 3.0
    (Fbp_linalg.Csr.get t 0 2)

let test_csr_freeze_under_sanitizer () =
  with_sanitize (fun () ->
      let b = Fbp_linalg.Csr.builder 3 in
      Fbp_linalg.Csr.add_spring b 0 2 1.0;
      Fbp_linalg.Csr.add_diag b 1 4.0;
      let t = Fbp_linalg.Csr.freeze b in
      Alcotest.(check int) "dim" 3 (Fbp_linalg.Csr.dim t))

(* ---------- end to end ---------- *)

let small_instance () =
  let d = Fbp_netlist.Generator.quick ~seed:11 ~name:"sanitize" 300 in
  Fbp_movebound.Instance.unconstrained d

let test_sanitized_place_succeeds () =
  with_sanitize (fun () ->
      let before = Sanitize.checks_run () in
      match Fbp_core.Placer.place (small_instance ()) with
      | Error e -> Alcotest.fail (Err.to_string e)
      | Ok _ ->
        Alcotest.(check bool) "sanitizer actually ran checks" true
          (Sanitize.checks_run () > before))

let test_corruption_stops_even_graceful_mode () =
  with_sanitize (fun () ->
      with_inject (fun () ->
          (* graceful (non-strict) mode degrades most failures away; a
             sanitizer violation must hard-stop instead *)
          Inject.arm Inject.Mcf Inject.Corrupt;
          match Fbp_core.Placer.place (small_instance ()) with
          | Error (Err.Sanitizer_violation { site; _ }) ->
            Alcotest.(check string) "mcf site" "mcf.solve" site
          | Error e -> Alcotest.fail ("wrong error: " ^ Err.to_string e)
          | Ok _ -> Alcotest.fail "corruption must not yield a placement"))

let test_corruption_unnoticed_without_sanitizer () =
  (* control: same fault, sanitizer off — the run completes, which is
     exactly the silent-wrong-answer mode the sanitizer exists to catch *)
  with_inject (fun () ->
      Sanitize.set_enabled false;
      Inject.arm Inject.Mcf Inject.Corrupt;
      match Fbp_core.Placer.place (small_instance ()) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("unsanitized run failed: " ^ Err.to_string e))

(* ---------- transport injection site ---------- *)

let test_transport_injected_corruption_trips () =
  with_sanitize (fun () ->
      with_inject (fun () ->
          Inject.arm Inject.Transport Inject.Corrupt;
          match Transport.solve (transport_problem ()) with
          | _ -> Alcotest.fail "corrupted transport must trip the sanitizer"
          | exception Err.Error (Err.Sanitizer_violation { site; _ }) ->
            Alcotest.(check string) "at the transport site" "transport.solve"
              site))

let test_transport_injected_raise () =
  with_inject (fun () ->
      Inject.arm Inject.Transport (Inject.Raise "boom");
      match Transport.solve (transport_problem ()) with
      | _ -> Alcotest.fail "armed raise must fire"
      | exception Inject.Injected msg ->
        Alcotest.(check string) "message" "boom" msg)

let test_transport_corruption_unnoticed_without_sanitizer () =
  with_inject (fun () ->
      Sanitize.set_enabled false;
      Inject.arm Inject.Transport Inject.Corrupt;
      match Transport.solve (transport_problem ()) with
      | Ok a ->
        (* the corruption really happened: the audit fails after the fact *)
        (match Transport.audit (transport_problem ()) a with
        | Ok () -> Alcotest.fail "corrupted output must not audit clean"
        | Error _ -> ())
      | Error e -> Alcotest.fail e)

(* ---------- legalize injection site ---------- *)

let legalize_small () =
  let d = Fbp_netlist.Generator.quick ~seed:13 ~name:"lg-inject" 200 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  let regions =
    Fbp_movebound.Regions.decompose ~chip:d.Fbp_netlist.Design.chip
      inst.Fbp_movebound.Instance.movebounds
  in
  let pos = Fbp_netlist.Placement.copy d.Fbp_netlist.Design.initial in
  let n = Fbp_netlist.Netlist.n_cells d.Fbp_netlist.Design.netlist in
  Fbp_legalize.Legalizer.run inst regions pos
    ~piece_of_cell:(Array.make n (-1)) ~grid:None

let test_legalize_injected_corruption_trips () =
  with_sanitize (fun () ->
      with_inject (fun () ->
          Inject.arm Inject.Legalize Inject.Corrupt;
          match legalize_small () with
          | _ -> Alcotest.fail "corrupted legalization must trip the sanitizer"
          | exception Err.Error (Err.Sanitizer_violation { site; invariant; _ })
            ->
            Alcotest.(check string) "at the legalize site" "legalize.run" site;
            Alcotest.(check string) "containment invariant" "chip containment"
              invariant))

let test_legalize_injected_raise () =
  with_inject (fun () ->
      Inject.arm Inject.Legalize (Inject.Raise "legalize down");
      match legalize_small () with
      | _ -> Alcotest.fail "armed raise must fire"
      | exception Inject.Injected msg ->
        Alcotest.(check string) "message" "legalize down" msg)

let test_legalize_clean_run_passes_sanitizer () =
  with_sanitize (fun () ->
      let before = Sanitize.checks_run () in
      let st = legalize_small () in
      Alcotest.(check int) "no failures" 0 st.Fbp_legalize.Legalizer.n_failed;
      Alcotest.(check bool) "containment check ran" true
        (Sanitize.checks_run () > before))

(* ---------- run record on sanitizer-violation exits ---------- *)

let test_record_written_on_sanitizer_violation () =
  (* regression: a sanitizer violation raised from the post-placement
     stages (legalization) must come back as a typed [Error] value from the
     runner — not an exception unwinding past the CLI's record-writing exit
     path — and the flight record must still be writable afterwards *)
  with_sanitize (fun () ->
      with_inject (fun () ->
          let module Rec = Fbp_obs.Recorder in
          Rec.reset ();
          Rec.enable ();
          Fun.protect ~finally:Rec.disable (fun () ->
              Inject.arm Inject.Legalize Inject.Corrupt;
              let inst = small_instance () in
              (match Fbp_workloads.Runner.run_fbp inst with
              | Ok _ -> Alcotest.fail "corruption must not yield metrics"
              | Error (Err.Sanitizer_violation { site; _ }) ->
                Alcotest.(check string) "legalize site" "legalize.run" site
              | Error e -> Alcotest.fail ("wrong error: " ^ Err.to_string e));
              let path = Filename.temp_file "fbp-record" ".json" in
              Fun.protect
                ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
                (fun () ->
                  Rec.write_current path;
                  match Rec.read_file path with
                  | Ok r ->
                    Alcotest.(check bool) "record has levels" true
                      (List.length r.Rec.levels > 0)
                  | Error msg ->
                    Alcotest.fail ("record must read back: " ^ msg)))))

let suite =
  [
    Alcotest.test_case "disabled check is free" `Quick test_check_disabled_is_free;
    Alcotest.test_case "enabled check raises typed" `Quick
      test_check_enabled_raises_typed;
    Alcotest.test_case "exit code 8" `Quick test_exit_code_is_8;
    Alcotest.test_case "mcf: solver output verifies" `Quick
      test_check_flow_accepts_solver_output;
    Alcotest.test_case "mcf: conservation break caught" `Quick
      test_check_flow_catches_conservation_break;
    Alcotest.test_case "mcf: capacity break caught" `Quick
      test_check_flow_catches_capacity_break;
    Alcotest.test_case "mcf: sanitized solve passes" `Quick
      test_solve_under_sanitizer_passes;
    Alcotest.test_case "mcf: injected corruption trips" `Quick
      test_injected_corruption_trips_sanitizer;
    Alcotest.test_case "transport: solver output verifies" `Quick
      test_transport_audit_accepts_solver_output;
    Alcotest.test_case "transport: tampering caught" `Quick
      test_transport_audit_catches_tampering;
    Alcotest.test_case "transport: sanitized solve passes" `Quick
      test_transport_solve_under_sanitizer;
    Alcotest.test_case "csr: frozen matrix validates" `Quick
      test_csr_validate_frozen;
    Alcotest.test_case "csr: sanitized freeze passes" `Quick
      test_csr_freeze_under_sanitizer;
    Alcotest.test_case "e2e: sanitized place succeeds" `Quick
      test_sanitized_place_succeeds;
    Alcotest.test_case "e2e: corruption hard-stops" `Quick
      test_corruption_stops_even_graceful_mode;
    Alcotest.test_case "e2e: control without sanitizer" `Quick
      test_corruption_unnoticed_without_sanitizer;
    Alcotest.test_case "transport: injected corruption trips" `Quick
      test_transport_injected_corruption_trips;
    Alcotest.test_case "transport: injected raise" `Quick
      test_transport_injected_raise;
    Alcotest.test_case "transport: control without sanitizer" `Quick
      test_transport_corruption_unnoticed_without_sanitizer;
    Alcotest.test_case "legalize: injected corruption trips" `Quick
      test_legalize_injected_corruption_trips;
    Alcotest.test_case "legalize: injected raise" `Quick
      test_legalize_injected_raise;
    Alcotest.test_case "legalize: clean run passes sanitizer" `Quick
      test_legalize_clean_run_passes_sanitizer;
    Alcotest.test_case "record written on sanitizer violation" `Quick
      test_record_written_on_sanitizer_violation;
  ]
